"""The ``python -m repro`` command line: solve, bench, profile, disprove, report, check, store, serve, submit, trace.

Nine subcommands::

    python -m repro solve --suite isaplanner --goal prop_01 --emit-proofs
    python -m repro bench --suite isaplanner --jobs 4 --timeout 1 --store results.jsonl
    python -m repro profile --suite isaplanner --limit 10 --max-nodes 300
    python -m repro disprove --suite false_conjectures
    python -m repro report --store results.jsonl
    python -m repro check --store results.jsonl --require-certificates
    python -m repro store compact --store results.jsonl
    python -m repro serve --socket repro.sock --store results.jsonl --library lemmas.jsonl
    python -m repro submit --socket repro.sock --suite isaplanner --goal prop_01

``solve`` proves individual goals (from a built-in suite or a program file)
and prints the proof-search statistics; with ``--emit-proofs`` every proof is
also encoded as a portable certificate (``--proof-dir`` writes self-contained
certificate files), and with ``--falsify`` every goal is ground-tested first —
a refuted goal reports ``disproved`` with its counterexample instead of
burning the proof budget.  ``bench`` runs a suite on the parallel engine —
``--jobs``, ``--portfolio``, ``--store``, ``--timeout``, ``--emit-proofs`` and
``--falsify`` map straight onto :func:`repro.engine.suite.solve_suite` — and
prints the paper-vs-measured tables.  ``profile`` runs a suite slice serially
with the phase profiler and prints where the prover's wall-clock actually
went — ranked per-phase exclusive times and the hottest head symbols — with a
``--cprofile`` escape hatch for a function-level view (both ``solve`` and
``bench`` also accept ``--profile`` to append the same tables to a normal
run).  ``disprove`` runs *only* the falsifier
(no proof search, no workers) and exits 0 exactly when every selected goal is
refuted with a replayable counterexample.  ``report`` renders tables from a
persisted result store without re-running anything.  ``check`` independently
re-verifies proof certificates — from a result store or from certificate
files — by re-elaborating the program into a fresh term bank and re-running
the local and global soundness checks from scratch (exit code 1 when any
proof is rejected).  ``store`` maintains persisted stores (``compact`` dedups
superseded lines and drops stale-schema lines).  ``serve`` runs the long-lived
proof service daemon (warm per-theory state, result-store replay, lemma
library) and ``submit`` talks to it over its unix socket — see
:mod:`repro.service` and ``docs/service.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from .benchmarks_data.registry import (
    BenchmarkProblem,
    all_problems,
    false_conjectures_problems,
    isaplanner_problems,
    mutual_problems,
)
from .engine.portfolio import PORTFOLIO_PRESETS
from .harness.report import (
    ascii_cumulative_plot,
    check_time_table,
    compile_summary_table,
    counterexample_table,
    format_table,
    hot_symbol_table,
    isaplanner_summary_table,
    phase_profile_table,
    portfolio_winner_table,
    proof_size_table,
    strategy_summary_table,
    unsolved_classification,
    worker_utilisation_table,
)
from .harness.runner import SolveRecord, SuiteResult, run_suite, run_suite_parallel
from .search.agenda import strategy_names
from .search.config import LEMMAS_ALL, LEMMAS_CASE_ONLY, LEMMAS_NONE, ProverConfig

__all__ = ["main", "build_parser"]

#: Format marker of self-contained certificate *files* written by
#: ``solve --emit-proofs --proof-dir`` (program source + certificate in one
#: JSON document, so ``repro check file.json`` needs nothing else).
CERTIFICATE_FILE_FORMAT = "cycleq.certificate-file"

SUITES = {
    "isaplanner": isaplanner_problems,
    "mutual": mutual_problems,
    "false_conjectures": false_conjectures_problems,
    "all": all_problems,
}

#: Worker-side resolver per suite: workers only rebuild the programs they can
#: actually be asked about, instead of every suite on every (re)spawn.
RESOLVERS = {
    "isaplanner": "repro.benchmarks_data.registry:isaplanner_problems",
    "mutual": "repro.benchmarks_data.registry:mutual_problems",
    "false_conjectures": "repro.benchmarks_data.registry:false_conjectures_problems",
    "all": "repro.benchmarks_data.registry:all_problems",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CycleQ reproduction: prove equations, run benchmark suites, read result stores.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="prove one or more named goals")
    source = solve.add_mutually_exclusive_group()
    source.add_argument("--suite", choices=sorted(SUITES), default="all",
                        help="built-in suite to look the goal up in (default: all)")
    source.add_argument("--file", help="program file in the surface language")
    solve.add_argument("--goal", action="append", default=[], metavar="NAME",
                       help="goal name; repeatable (required with --suite)")
    solve.add_argument("--hint", action="append", default=[], metavar="EQUATION",
                       help="lemma hint as equation source, e.g. 'add a b === add b a'")
    solve.add_argument("--timeout", type=float, default=None, help="per-goal budget in seconds")
    solve.add_argument("--max-depth", type=int, default=None)
    solve.add_argument("--lemmas", choices=(LEMMAS_CASE_ONLY, LEMMAS_ALL, LEMMAS_NONE), default=None)
    solve.add_argument("--strategy", choices=strategy_names(), default=None,
                       help="search strategy for the agenda core (default: dfs)")
    solve.add_argument("--emit-proofs", action="store_true",
                       help="encode every proof as a portable certificate")
    solve.add_argument("--proof-dir", default=None, metavar="DIR",
                       help="write self-contained certificate files to DIR (implies --emit-proofs)")
    solve.add_argument("--falsify", action="store_true",
                       help="ground-test each goal first; refuted goals report "
                            "'disproved' with a counterexample and skip proof search")
    solve.add_argument("--no-compile-rules", action="store_true",
                       help="disable compiled rewrite dispatch (generic matching; "
                            "the benchmarking/parity baseline)")
    solve.add_argument("--profile", action="store_true",
                       help="print the per-phase time breakdown after each goal")

    bench = commands.add_parser("bench", help="run a benchmark suite on the parallel engine")
    bench.add_argument("--suite", choices=sorted(SUITES), default="isaplanner")
    bench.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: CPU count; 0 = serial in-process)")
    bench.add_argument("--serial", action="store_true", help="force the serial runner")
    bench.add_argument("--portfolio", nargs="?", const="default", default=None,
                       choices=sorted(PORTFOLIO_PRESETS),
                       help="race a portfolio per goal: 'default' (config knobs) or "
                            "'strategy-race' (dfs vs iddfs vs best-first)")
    bench.add_argument("--strategy", choices=strategy_names(), default=None,
                       help="search strategy for the (base) configuration (default: dfs)")
    bench.add_argument("--store", default=None, metavar="PATH",
                       help="JSON-lines result store; warm entries are replayed, not re-solved")
    bench.add_argument("--timeout", type=float, default=None, help="per-goal budget in seconds")
    bench.add_argument("--limit", type=int, default=None, metavar="N",
                       help="only the first N problems of the suite")
    bench.add_argument("--names", default=None,
                       help="comma-separated problem names to run (a slice of the suite)")
    bench.add_argument("--plot", action="store_true", help="print the Fig. 7 ASCII cumulative plot")
    bench.add_argument("--emit-proofs", action="store_true",
                       help="workers encode certificates for every proof; persisted in the store")
    bench.add_argument("--falsify", action="store_true",
                       help="ground-test each goal before search; refutations are "
                            "reported (and persisted) as 'disproved' with counterexamples")
    bench.add_argument("--no-compile-rules", action="store_true",
                       help="disable compiled rewrite dispatch (generic matching; "
                            "the benchmarking/parity baseline)")
    bench.add_argument("--profile", action="store_true",
                       help="append the phase-profile and hot-symbol tables to the report")

    profile = commands.add_parser(
        "profile",
        help="run a suite slice serially and print where the prover's time went",
    )
    profile.add_argument("--suite", choices=sorted(SUITES), default="isaplanner")
    profile.add_argument("--limit", type=int, default=None, metavar="N",
                         help="only the first N problems of the suite")
    profile.add_argument("--names", default=None,
                         help="comma-separated problem names to profile (a slice of the suite)")
    profile.add_argument("--timeout", type=float, default=None,
                         help="per-goal budget in seconds")
    profile.add_argument("--max-nodes", type=int, default=None, metavar="N",
                         help="deterministic per-goal node budget (replaces the "
                              "wall-clock budget; reproducible profiles)")
    profile.add_argument("--strategy", choices=strategy_names(), default=None,
                         help="search strategy for the agenda core (default: dfs)")
    profile.add_argument("--falsify", action="store_true",
                         help="ground-test each goal first (times the falsify phase too)")
    profile.add_argument("--no-compile-rules", action="store_true",
                         help="profile the generic-matching baseline instead")
    profile.add_argument("--cprofile", type=int, nargs="?", const=25, default=None,
                         metavar="N",
                         help="also run cProfile and print the top N functions "
                              "by cumulative time (default N: 25)")

    disprove = commands.add_parser(
        "disprove",
        help="run only the falsifier: refute goals on ground instances (no proof search)",
    )
    disprove_source = disprove.add_mutually_exclusive_group()
    disprove_source.add_argument("--suite", choices=sorted(SUITES), default="false_conjectures",
                                 help="built-in suite to falsify (default: false_conjectures)")
    disprove_source.add_argument("--file", help="program file in the surface language")
    disprove.add_argument("--goal", action="append", default=[], metavar="NAME",
                          help="goal name; repeatable (default: every goal of the selection)")
    disprove.add_argument("--names", default=None,
                          help="comma-separated goal names (a slice of the suite)")
    disprove.add_argument("--limit", type=int, default=None, metavar="N",
                          help="only the first N goals of the selection")
    disprove.add_argument("--depth", type=int, default=None,
                          help="exhaustive enumeration depth (default: 4)")
    disprove.add_argument("--exhaustive-limit", type=int, default=None, metavar="N",
                          help="exhaustive instances per goal (default: 400)")
    disprove.add_argument("--samples", type=int, default=None, metavar="N",
                          help="random instances per goal (default: 200)")
    disprove.add_argument("--random-depth", type=int, default=None,
                          help="depth of the random regime (default: 7)")
    disprove.add_argument("--seed", type=int, default=None,
                          help="seed of the random regime (default: fixed)")
    disprove.add_argument("--replay", action="store_true",
                          help="independently re-check every counterexample through "
                               "the generic normaliser before reporting it")

    report = commands.add_parser("report", help="render tables from a persisted result store")
    report.add_argument("--store", required=True, metavar="PATH")
    report.add_argument("--suite", default=None, help="only entries of this suite")
    report.add_argument("--plot", action="store_true", help="print the cumulative plot")

    check = commands.add_parser(
        "check", help="independently re-verify proof certificates (store or files)"
    )
    check.add_argument("certificates", nargs="*", metavar="CERT",
                       help="certificate JSON files (as written by solve --proof-dir)")
    check.add_argument("--store", default=None, metavar="PATH",
                       help="re-verify every certified proof in a result store")
    check.add_argument("--suite", default=None,
                       help="only store entries of this suite / program source for bare certificates")
    check.add_argument("--file", default=None, metavar="PROGRAM",
                       help="program file the certificates refer to (overrides embedded source)")
    check.add_argument("--require-certificates", action="store_true",
                       help="also fail when a proved store entry carries no certificate")
    check.add_argument("--allow-hypotheses", action="store_true",
                       help="accept partial proofs whose hypotheses are recorded with the "
                            "goal (hinted runs); without this flag any proof that assumes "
                            "a hypothesis is rejected")
    check.add_argument("--render", action="store_true",
                       help="render every verified proof tree after the table")

    store = commands.add_parser("store", help="maintain a persisted result store")
    store_commands = store.add_subparsers(dest="store_command", required=True)
    compact = store_commands.add_parser(
        "compact", help="rewrite the store with one line per key, dropping stale-schema lines"
    )
    compact.add_argument("--store", required=True, metavar="PATH")

    serve = commands.add_parser(
        "serve", help="run the proof service daemon (warm state + lemma library)"
    )
    serve.add_argument("--socket", default="repro-serve.sock", metavar="PATH",
                       help="unix socket to listen on (default: ./repro-serve.sock)")
    serve.add_argument("--store", default=None, metavar="PATH",
                       help="persistent result store; solved goals replay with zero workers")
    serve.add_argument("--library", default=None, metavar="PATH",
                       help="lemma library; certified proofs are learned and offered as hints")
    serve.add_argument("--warm-cache-size", type=int, default=8, metavar="N",
                       help="theories kept resident (elaborated program, compiled "
                            "rewrites, evaluator); LRU beyond N (default: 8)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="worker processes per dispatch (default: CPU count)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="default per-goal budget in seconds (requests may override)")
    serve.add_argument("--hint-limit", type=int, default=8, metavar="N",
                       help="most library lemmas offered to one goal (default: 8)")
    serve.add_argument("--explore", action="store_true",
                       help="enrich the library in the background when a new theory arrives")
    serve.add_argument("--prewarm", action="store_true",
                       help="rebuild warm state for every theory seen in the store/library at startup")
    serve.add_argument("--serialize-submits", action="store_true",
                       help="serialise submits on a lock with per-request workers (pre-pool behaviour)")
    serve.add_argument("--client-max-inflight", type=int, default=0, metavar="N",
                       help="max unsolved goals one client may have queued/running (0 = unlimited)")
    serve.add_argument("--client-cpu-budget", type=float, default=0.0, metavar="S",
                       help="cumulative worker CPU-seconds one client may consume (0 = unlimited)")
    serve.add_argument("--shutdown-grace", type=float, default=2.0, metavar="S",
                       help="seconds an in-flight goal may keep its worker at shutdown")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="write structured spans to this JSONL file "
                            "(read back with `repro trace`)")
    serve.add_argument("--trace-max-bytes", type=int, default=32 * 1024 * 1024,
                       metavar="N",
                       help="rotate the trace file past N bytes, keeping one "
                            ".1 sibling (default: 32 MiB)")

    submit = commands.add_parser(
        "submit", help="submit goals to a running proof service daemon"
    )
    submit.add_argument("--socket", default="repro-serve.sock", metavar="PATH",
                        help="daemon socket (default: ./repro-serve.sock)")
    submit_source = submit.add_mutually_exclusive_group()
    submit_source.add_argument("--suite", default=None,
                               help="built-in theory to submit goals against")
    submit_source.add_argument("--file", default=None, metavar="PROGRAM",
                               help="program file whose source is submitted")
    submit.add_argument("--goal", action="append", default=[], metavar="NAME",
                        help="declared goal name; repeatable (default: every goal)")
    submit.add_argument("--conjecture", action="append", default=[], metavar="NAME=EQUATION",
                        help="extra conjecture, e.g. add_comm='add a b === add b a'; repeatable")
    submit.add_argument("--timeout", type=float, default=None,
                        help="per-goal budget in seconds for this submission")
    submit.add_argument("--no-hints", action="store_true",
                        help="do not offer library lemmas as hints")
    submit.add_argument("--falsify", action="store_true",
                        help="ground-test goals before search (refutations disprove)")
    submit.add_argument("--wait", type=float, default=600.0, metavar="S",
                        help="client-side ceiling on the daemon's answer (default: 600)")
    submit.add_argument("--client", default=None, metavar="NAME",
                        help="client identity for the daemon's fair scheduler and budgets")
    submit.add_argument("--metrics", action="store_true",
                        help="print the daemon's service metrics table")
    submit.add_argument("--shutdown", action="store_true",
                        help="ask the daemon to shut down (after any submission)")

    trace = commands.add_parser(
        "trace", help="read a service trace file (summary, Chrome export, slow goals)"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_commands.add_parser(
        "summary", help="span counts and latency percentiles per op class and span name"
    )
    trace_summary.add_argument("path", metavar="TRACE",
                               help="JSONL trace file written by `serve --trace`")
    trace_export = trace_commands.add_parser(
        "export", help="convert a trace to Chrome trace-event JSON (open in Perfetto)"
    )
    trace_export.add_argument("path", metavar="TRACE")
    trace_export.add_argument("--out", default=None, metavar="FILE",
                              help="write the JSON here instead of stdout")
    trace_slow = trace_commands.add_parser(
        "slow", help="slowest goals with queue-wait vs solve-time attribution"
    )
    trace_slow.add_argument("path", metavar="TRACE")
    trace_slow.add_argument("--threshold", type=float, default=0.5, metavar="S",
                            help="report goals whose queue+solve total exceeds "
                                 "S seconds (default: 0.5)")
    trace_slow.add_argument("--limit", type=int, default=20, metavar="N",
                            help="most rows shown (default: 20)")

    return parser


# ---------------------------------------------------------------------------
# solve
# ---------------------------------------------------------------------------


def _solve_command(args) -> int:
    from .search.prover import Prover

    if args.file:
        from .lang.loader import load_program_file

        program = load_program_file(args.file)
        missing = [name for name in args.goal if name not in program.goals]
        if missing:
            print(f"solve: unknown goal(s) {', '.join(missing)} in {args.file}", file=sys.stderr)
            return 2
        goals = [program.goal(name) for name in args.goal] if args.goal else list(program.goals.values())
        pairs = [(program, goal) for goal in goals]
    else:
        if not args.goal:
            print("solve: --goal is required with --suite", file=sys.stderr)
            return 2
        problems = {p.name: p for p in SUITES[args.suite]()}
        missing = [name for name in args.goal if name not in problems]
        if missing:
            print(f"solve: unknown goal(s) {', '.join(missing)} in suite {args.suite}", file=sys.stderr)
            return 2
        pairs = [(problems[name].program, problems[name].goal) for name in args.goal]

    emit_proofs = args.emit_proofs or args.proof_dir is not None
    config = ProverConfig()
    changes = {}
    if args.timeout is not None:
        changes["timeout"] = args.timeout
    if args.max_depth is not None:
        changes["max_depth"] = args.max_depth
    if args.lemmas is not None:
        changes["lemma_restriction"] = args.lemmas
    if args.strategy is not None:
        changes["strategy"] = args.strategy
    if emit_proofs:
        changes["emit_proofs"] = True
    if args.falsify:
        changes["falsify_first"] = True
    if args.no_compile_rules:
        changes["compile_rules"] = False
    if changes:
        config = config.with_(**changes)

    if args.proof_dir is not None:
        os.makedirs(args.proof_dir, exist_ok=True)

    # Without --falsify only proofs count as success; with it a refutation is
    # an equally decisive answer, so 'disproved' resolves a goal too.
    all_resolved = True
    for program, goal in pairs:
        hints = tuple(program.parse_equation(source) for source in args.hint)
        result = Prover(program, config).prove_goal(goal, hypotheses=hints)
        print(result)
        if args.profile and result.statistics.phase_seconds:
            ranked = sorted(result.statistics.phase_seconds.items(), key=lambda kv: -kv[1])
            accounted = sum(seconds for _, seconds in ranked) or 1.0
            print(format_table(
                ("phase", "ms", "share", "entries"),
                [
                    (
                        phase,
                        f"{seconds * 1000:.2f}",
                        f"{100.0 * seconds / accounted:.1f}%",
                        result.statistics.phase_counts.get(phase, "-"),
                    )
                    for phase, seconds in ranked
                ],
            ))
        resolved = result.proved or (args.falsify and result.disproved)
        all_resolved = all_resolved and resolved
        if result.counterexample is not None:
            payload = result.counterexample.to_dict()
            print(f"  counterexample: {json.dumps(payload, sort_keys=True)}")
        certificate = result.certificate
        if certificate is not None:
            print(
                f"  certificate: {certificate.node_count} vertices, "
                f"{certificate.term_count} shared terms, {certificate.byte_size()} bytes, "
                f"sha256 {certificate.digest()[:16]}…"
            )
            if args.proof_dir is not None:
                path = os.path.join(args.proof_dir, f"{goal.name or 'goal'}.cert.json")
                payload = {
                    "format": CERTIFICATE_FILE_FORMAT,
                    "version": 1,
                    "program_source": program.source,
                    "hints": list(args.hint),
                    "certificate": certificate.to_dict(),
                }
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, sort_keys=True)
                    handle.write("\n")
                print(f"  wrote {path}")
    return 0 if all_resolved else 1


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------


def _select_problems(args) -> List[BenchmarkProblem]:
    problems = SUITES[args.suite]()
    if args.names:
        wanted = {name.strip() for name in args.names.split(",") if name.strip()}
        problems = [p for p in problems if p.name in wanted]
    if args.limit is not None:
        problems = problems[: max(0, args.limit)]
    return problems


def _print_suite_tables(result: SuiteResult, args, wall: float, parallel: bool, portfolio: bool = False) -> None:
    summary = result.summary()
    rows = [(key, value) for key, value in summary.items()]
    print(format_table(("metric", "value"), rows))
    print(f"\nwall-clock: {wall:.3f} s")
    store = getattr(result, "store", None)
    if store is not None:
        print(f"store: {store.path} ({len(store)} entries, {store.hits} hits / {store.misses} misses this run)")
        replayed = sum(1 for record in result.records if record.cached)
        print(f"replayed from store: {replayed}/{result.total}")
    if parallel:
        print("\n" + worker_utilisation_table(result, wall_seconds=wall))
    if portfolio:
        print("\nportfolio winners:")
        print(portfolio_winner_table(result))
    if any(r.disproved for r in result.records):
        print("\ncounterexamples:")
        print(counterexample_table(result))
    print("\nper-strategy summary:")
    print(strategy_summary_table(result))
    if any(r.compiled_steps or r.fallback_steps for r in result.records):
        print("\ncompiled rewrite dispatch:")
        print(compile_summary_table(result))
    if getattr(args, "profile", False):
        print("\nphase profile (exclusive time):")
        print(phase_profile_table(result))
        print("\nhottest symbols:")
        print(hot_symbol_table(result))
    if getattr(args, "emit_proofs", False) or any(r.certificate for r in result.records):
        print("\nproof certificates:")
        print(proof_size_table(result))
    if args.suite == "isaplanner" and args.limit is None and not args.names:
        print("\npaper vs measured (Section 6.1):")
        print(isaplanner_summary_table(result))
        print("\nunsolved problems:")
        print(unsolved_classification(result))
    if getattr(args, "plot", False):
        print("\ncumulative solved-vs-time (Fig. 7):")
        print(ascii_cumulative_plot(result))


def _bench_command(args) -> int:
    problems = _select_problems(args)
    if not problems:
        print("bench: no problems selected", file=sys.stderr)
        return 2
    config = ProverConfig()
    if args.timeout is not None:
        config = config.with_(timeout=args.timeout)
    if args.strategy is not None:
        config = config.with_(strategy=args.strategy)
    if args.emit_proofs:
        config = config.with_(emit_proofs=True)
    if args.falsify:
        config = config.with_(falsify_first=True)
    if args.no_compile_rules:
        config = config.with_(compile_rules=False)
    serial = args.serial or args.jobs == 0
    started = time.monotonic()
    if serial:
        result = run_suite(problems, config, suite_name=args.suite)
    else:
        variants = PORTFOLIO_PRESETS[args.portfolio](config) if args.portfolio else None
        result = run_suite_parallel(
            problems,
            config,
            suite_name=args.suite,
            jobs=args.jobs,
            variants=variants,
            store=args.store,
            resolver=RESOLVERS[args.suite],
        )
    wall = time.monotonic() - started
    _print_suite_tables(result, args, wall, parallel=not serial, portfolio=bool(args.portfolio))
    return 0


# ---------------------------------------------------------------------------
# profile
# ---------------------------------------------------------------------------


def _profile_command(args) -> int:
    """Serial suite slice under the phase profiler; where did the time go?

    Serial on purpose: phase times are *per-attempt* wall-clock, and a profile
    taken while sibling workers compete for cores answers a different (and
    noisier) question.  ``--max-nodes`` pins a deterministic search budget so
    two profiles of the same tree are comparable; ``--cprofile`` drops from
    phases to functions when the phase ranking alone is too coarse.
    """
    problems = _select_problems(args)
    if not problems:
        print("profile: no problems selected", file=sys.stderr)
        return 2
    config = ProverConfig()
    changes = {}
    if args.timeout is not None:
        changes["timeout"] = args.timeout
    if args.max_nodes is not None:
        changes["max_nodes"] = args.max_nodes
        changes.setdefault("timeout", None)
    if args.strategy is not None:
        changes["strategy"] = args.strategy
    if args.falsify:
        changes["falsify_first"] = True
    if args.no_compile_rules:
        changes["compile_rules"] = False
    if changes:
        config = config.with_(**changes)

    def run() -> SuiteResult:
        return run_suite(problems, config, suite_name=args.suite)

    started = time.monotonic()
    if args.cprofile is not None:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        result = profiler.runcall(run)
    else:
        result = run()
    wall = time.monotonic() - started

    print(format_table(("metric", "value"), list(result.summary().items())))
    print(f"\nwall-clock: {wall:.3f} s ({len(problems)} goal(s), serial)")
    print("\nphase profile (exclusive time):")
    print(phase_profile_table(result))
    print("\nhottest symbols (rewrite steps under compiled dispatch):")
    print(hot_symbol_table(result))
    if args.cprofile is not None:
        print(f"\ncProfile: top {args.cprofile} function(s) by cumulative time:")
        pstats.Stats(profiler, stream=sys.stdout).strip_dirs().sort_stats(
            "cumulative"
        ).print_stats(args.cprofile)
    return 0


# ---------------------------------------------------------------------------
# disprove
# ---------------------------------------------------------------------------


def _disprove_command(args) -> int:
    from .semantics.falsify import FalsificationConfig, falsify_goal

    if args.file:
        from .lang.loader import load_program

        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            print(f"disprove: cannot read {args.file}: {error.strerror or error}", file=sys.stderr)
            return 2
        from .core.exceptions import CycleQError

        try:
            program = load_program(source, name=os.path.basename(args.file))
        except CycleQError as error:
            print(f"disprove: {args.file} does not elaborate: {error}", file=sys.stderr)
            return 2
        selection = [(program, goal) for goal in program.goals.values()]
    else:
        selection = [(p.program, p.goal) for p in SUITES[args.suite]()]

    wanted = set(args.goal)
    if args.names:
        wanted.update(name.strip() for name in args.names.split(",") if name.strip())
    if wanted:
        known = {goal.name for _, goal in selection}
        missing = sorted(wanted - known)
        if missing:
            print(f"disprove: unknown goal(s) {', '.join(missing)}", file=sys.stderr)
            return 2
        selection = [(program, goal) for program, goal in selection if goal.name in wanted]
    if args.limit is not None:
        selection = selection[: max(0, args.limit)]
    if not selection:
        print("disprove: no goals selected", file=sys.stderr)
        return 2

    changes = {}
    if args.depth is not None:
        changes["depth"] = args.depth
    if args.exhaustive_limit is not None:
        changes["exhaustive_limit"] = args.exhaustive_limit
    if args.samples is not None:
        changes["random_samples"] = args.samples
    if args.random_depth is not None:
        changes["random_depth"] = args.random_depth
    if args.seed is not None:
        changes["seed"] = args.seed
    config = FalsificationConfig(**changes) if changes else FalsificationConfig()

    rows = []
    disproved = 0
    errors = 0
    for program, goal in selection:
        outcome = falsify_goal(program, goal, config)
        counterexample = outcome.counterexample
        if counterexample is not None and args.replay and not counterexample.replay(program):
            # The compiled evaluator and the normaliser disagree — a bug in
            # one of them, never a verdict about the conjecture.
            print(
                f"disprove: counterexample for {goal.name} failed normaliser replay",
                file=sys.stderr,
            )
            errors += 1
            counterexample = None
        if counterexample is not None:
            disproved += 1
            witness = ", ".join(
                f"{name} = {value}" for name, value in sorted(counterexample.bindings.items())
            )
            status = "disproved"
            detail = (
                f"{witness} ⇒ lhs {counterexample.lhs_value}, rhs {counterexample.rhs_value}"
            )
        elif outcome.error:
            status, detail = "unavailable", outcome.error
        else:
            status, detail = "no counterexample", f"{outcome.instances_tested} instances tested"
        rows.append(
            (goal.name, status, outcome.instances_tested, f"{outcome.seconds * 1000:.2f}", detail)
        )
    print(format_table(("goal", "status", "tested", "ms", "detail"), rows))
    print(
        f"\ndisproved {disproved}/{len(selection)} goal(s) "
        f"(depth {config.depth}, ≤{config.exhaustive_limit} exhaustive + "
        f"{config.random_samples} random instances, seed {config.seed})"
    )
    if errors:
        return 2
    return 0 if disproved == len(selection) else 1


# ---------------------------------------------------------------------------
# report / check / store
# ---------------------------------------------------------------------------


def _open_store(path: str, command: str, lock: bool = True):
    """Load a result store, or print a friendly one-line error and return ``None``.

    A missing path, a directory, unreadable bytes, or any other I/O problem
    must exit with a clear message and a nonzero code — never a traceback.
    ``lock=False`` is for read-only consumers (report, check): they must keep
    working while a serve daemon holds the store's advisory write lock.
    """
    from .engine.store import ResultStore

    if not os.path.exists(path):
        print(f"{command}: store {path} does not exist", file=sys.stderr)
        return None
    try:
        return ResultStore(path, lock=lock)
    except (OSError, UnicodeDecodeError) as error:
        detail = getattr(error, "strerror", None) or str(error)
        print(f"{command}: cannot read store {path}: {detail}", file=sys.stderr)
        return None


def _records_from_store(store, suite: Optional[str]) -> Dict[str, List[SolveRecord]]:
    """Reconstruct per-suite records from store entries (latest per key)."""
    by_suite: Dict[str, Dict[str, SolveRecord]] = {}
    for entry in store.entries():
        goal_key = str(entry.get("goal", ""))
        suite_name, _, name = goal_key.partition("/")
        if suite and suite_name != suite:
            continue
        record = SolveRecord(
            name=name or goal_key,
            suite=suite_name,
            status=str(entry.get("status", "failed")),
            seconds=float(entry.get("seconds") or 0.0),
            nodes=int(entry.get("nodes") or 0),
            subst_attempts=int(entry.get("subst_attempts") or 0),
            soundness_violations=int(entry.get("soundness_violations") or 0),
            normalizer_hits=int(entry.get("normalizer_hits") or 0),
            normalizer_misses=int(entry.get("normalizer_misses") or 0),
            reason=str(entry.get("reason") or ""),
            variant=str(entry.get("variant") or ""),
            strategy=str(entry.get("strategy") or ""),
            max_agenda_size=int(entry.get("max_agenda_size") or 0),
            choice_points=int(entry.get("choice_points") or 0),
            cached=True,
            certificate=entry.get("certificate"),
            certificate_seconds=float(entry.get("certificate_seconds") or 0.0),
            counterexample=entry.get("counterexample"),
            falsify_seconds=float(entry.get("falsify_seconds") or 0.0),
            compile_seconds=float(entry.get("compile_seconds") or 0.0),
            compiled_steps=int(entry.get("compiled_steps") or 0),
            fallback_steps=int(entry.get("fallback_steps") or 0),
            hot_symbols=dict(entry.get("hot_symbols") or {}),
            # Lines written before the phase profiler have neither field;
            # degrade to empty dicts (the profile table renders them as "-").
            phase_seconds=dict(entry.get("phase_seconds") or {}),
            phase_counts=dict(entry.get("phase_counts") or {}),
        )
        goals = by_suite.setdefault(suite_name, {})
        # Several configs may have attempted the goal; keep the best outcome
        # (a decisive verdict — proof or refutation — beats a failure, then
        # the faster decisive outcome wins).
        existing = goals.get(record.name)
        decisive = record.proved or record.disproved
        existing_decisive = existing is not None and (existing.proved or existing.disproved)
        if (
            existing is None
            or (decisive and not existing_decisive)
            or (decisive and existing_decisive and record.seconds < existing.seconds)
        ):
            goals[record.name] = record
    return {suite_name: list(goals.values()) for suite_name, goals in by_suite.items()}


def _report_command(args) -> int:
    store = _open_store(args.store, "report", lock=False)
    if store is None:
        return 2
    if len(store) == 0:
        print(f"report: store {args.store} holds no readable entries", file=sys.stderr)
        return 2
    per_suite = _records_from_store(store, args.suite)
    if not per_suite:
        print(f"report: no entries for suite {args.suite!r} in {args.store}", file=sys.stderr)
        return 2
    print(f"store: {store.path} ({len(store)} entries)")
    for suite_name in sorted(per_suite):
        result = SuiteResult(suite=suite_name, records=per_suite[suite_name])
        print(f"\n== {suite_name} ==")
        rows = [(key, value) for key, value in result.summary().items()]
        print(format_table(("metric", "value"), rows))
        winners = portfolio_winner_table(result)
        if "no proofs" not in winners:
            print("\nwinning variants:")
            print(winners)
        if any(r.certificate for r in result.records):
            print("\nproof certificates:")
            print(proof_size_table(result))
        if any(r.disproved for r in result.records):
            print("\ncounterexamples:")
            print(counterexample_table(result))
        if any(r.compiled_steps or r.fallback_steps for r in result.records):
            print("\ncompiled rewrite dispatch:")
            print(compile_summary_table(result))
        if any(r.phase_seconds for r in result.records):
            print("\nphase profile (exclusive time):")
            print(phase_profile_table(result))
        if args.plot:
            print(ascii_cumulative_plot(result))
    return 0


# ---------------------------------------------------------------------------
# check
# ---------------------------------------------------------------------------


def _suite_program_source(suite_name: str) -> Optional[str]:
    """The surface source of a built-in suite's program, or ``None``.

    Raw text, no elaboration: the checker will elaborate it itself, into its
    own bank — building the program here too would double the work and leak
    its terms into the CLI's ambient bank.
    """
    from .benchmarks_data.registry import SUITE_PROGRAM_SOURCES

    return SUITE_PROGRAM_SOURCES.get(suite_name)


def _split_stored_equation(text: str):
    """Split a store equation field into (hint sources, goal equation source)."""
    hints_text, separator, equation = text.partition("⊢")
    if not separator:
        return (), text.strip()
    hints = tuple(h.strip() for h in hints_text.split(";") if h.strip())
    return hints, equation.strip()


def _check_store(args) -> int:
    from .proofs.checker import CertificateChecker

    store = _open_store(args.store, "check", lock=False)
    if store is None:
        return 2
    override_checker: Optional[CertificateChecker] = None
    if args.file:
        # Fail fast: an unreadable or unparseable program override is a usage
        # error, not a verdict about anybody's proofs.
        override_source = _read_program_file(args.file)
        if override_source is None:
            return 2
        override_checker = _build_checker(override_source, args.file)
        if override_checker is None:
            return 2
    checkers: Dict[str, Optional[CertificateChecker]] = {}
    checker_errors: Dict[str, str] = {}
    rows: List[dict] = []
    rendered: List[str] = []
    proved = rejected = missing = stale = 0
    examined = 0
    for entry in sorted(store.entries(), key=lambda e: str(e.get("goal", ""))):
        goal_key = str(entry.get("goal", ""))
        suite_name, _, _name = goal_key.partition("/")
        if args.suite and suite_name != args.suite:
            continue
        examined += 1
        if entry.get("status") != "proved":
            continue
        proved += 1
        certificate = entry.get("certificate")
        if certificate is None:
            missing += 1
            rows.append({"goal": goal_key, "status": "no certificate",
                         "detail": "entry was persisted without emit_proofs"})
            continue
        if suite_name not in checkers:
            if override_checker is not None:
                checkers[suite_name] = override_checker
            else:
                source = _suite_program_source(suite_name)
                if source is None:
                    checkers[suite_name] = None
                    checker_errors[suite_name] = (
                        f"no program source for suite {suite_name!r} (use --file)"
                    )
                else:
                    checkers[suite_name] = _build_checker(source, suite_name)
                    if checkers[suite_name] is None:
                        checker_errors[suite_name] = (
                            f"program for suite {suite_name!r} failed to elaborate (see stderr)"
                        )
        checker = checkers[suite_name]
        if checker is None:
            rejected += 1
            rows.append({"goal": goal_key, "status": "REJECTED",
                         "detail": checker_errors[suite_name]})
            continue
        entry_fp = str(entry.get("program", ""))
        if entry_fp and entry_fp != checker.program.fingerprint():
            # The entry was persisted for a different program version; the
            # source at hand cannot vouch for (or against) its proof.
            # Skipped, not rejected — otherwise one edit to a benchmark
            # definition would turn every old-but-valid line into a permanent
            # failure that `store compact` cannot purge.
            stale += 1
            detail = (
                "program fingerprint does not match the --file program"
                if override_checker is not None
                else "stale program fingerprint (entry predates the current program)"
            )
            rows.append({"goal": goal_key, "status": "skipped", "detail": detail})
            continue
        hints, equation = _split_stored_equation(str(entry.get("equation", "")))
        granted = hints if args.allow_hypotheses else ()
        report = checker.check(certificate, hypotheses=granted, goal_equation=equation or None)
        rows.append(_check_row(goal_key, report, certificate))
        if not report.ok:
            rejected += 1
        elif args.render:
            rendered.append(_render_checked(goal_key, certificate))
    if args.suite and examined == 0:
        # A filter that matches nothing is a usage error (typo'd suite name),
        # not a clean bill of health.
        print(f"check: no entries for suite {args.suite!r} in {args.store}", file=sys.stderr)
        return 2
    if override_checker is not None and stale and len(rows) == missing + stale:
        # The named program vouched for nothing: every certified entry was
        # persisted under a different fingerprint.  A wrong --file must not
        # read as a clean bill of health.
        print(
            f"check: no entries in {args.store} match the program from {args.file}",
            file=sys.stderr,
        )
        return 2
    print(check_time_table(rows))
    skipped = f", {stale} skipped (stale program)" if stale else ""
    checked = len(rows) - missing - stale
    print(
        f"\nchecked {checked} certificate(s) over {proved} proved entr(ies): "
        f"{checked - rejected} verified, {rejected} rejected, "
        f"{missing} without certificate{skipped}"
    )
    for block in rendered:
        print("\n" + block)
    # Strict mode: a proved entry that was not actually verified — no
    # certificate, or skipped for a stale program — is a failure.  Without the
    # flag, skips are informational so that editing a program does not turn
    # every pre-existing (valid) line into a permanent red.
    if rejected or (args.require_certificates and (missing or stale)):
        return 1
    return 0


def _build_checker(source: str, name: str):
    """Elaborate a checker program, or print a friendly error and return ``None``.

    The source may be untrusted (embedded in a certificate file) or simply
    wrong (a mistyped ``--file``); either way a parse/elaboration failure is a
    one-line diagnostic, never a traceback.
    """
    from .core.exceptions import CycleQError
    from .proofs.checker import CertificateChecker

    try:
        return CertificateChecker(source, name=name)
    except CycleQError as error:
        print(f"check: program for {name} does not elaborate: {error}", file=sys.stderr)
        return None


def _read_program_file(path: str) -> Optional[str]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
    except OSError as error:
        print(f"check: cannot read program {path}: {error.strerror or error}", file=sys.stderr)
        return None


def _check_row(goal: str, report, certificate: dict) -> dict:
    from .proofs.certificate import canonical_json

    payload = canonical_json(certificate)
    status = "verified" if report.ok else "REJECTED"
    if report.ok and report.hypotheses:
        status = f"verified ({len(report.hypotheses)} hyp)"
    return {
        "goal": goal,
        "status": status,
        "nodes": report.nodes,
        "bytes": len(payload),
        "seconds": report.seconds,
        "detail": report.issues[0] if report.issues else "",
    }


def _render_checked(goal: str, certificate: dict) -> str:
    from .proofs.render import render_certificate

    return f"== {goal} ==\n{render_certificate(certificate)}"


def _check_files(args) -> int:
    from .proofs.checker import CertificateChecker

    rows: List[dict] = []
    rendered: List[str] = []
    checkers: Dict[str, Optional[CertificateChecker]] = {}
    rejected = 0
    errors = 0
    override_source: Optional[str] = None
    if args.file:
        override_source = _read_program_file(args.file)
        if override_source is None:
            return 2
    suite_source: Optional[str] = None
    if args.suite:
        suite_source = _suite_program_source(args.suite)
        if suite_source is None:
            # Fail loudly: silently falling back to the file's own embedded
            # source would verify against a program the user did not name.
            print(f"check: unknown suite {args.suite!r}", file=sys.stderr)
            return 2
    for path in args.certificates:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"check: cannot read certificate {path}: {error}", file=sys.stderr)
            errors += 1
            continue
        if isinstance(payload, dict) and "certificate" in payload:
            fmt = payload.get("format", CERTIFICATE_FILE_FORMAT)
            version = payload.get("version", 1)
            if fmt != CERTIFICATE_FILE_FORMAT or version != 1:
                print(
                    f"check: {path} has unsupported certificate-file format "
                    f"{fmt!r} version {version!r}",
                    file=sys.stderr,
                )
                errors += 1
                continue
            certificate = payload["certificate"]
            embedded_source = payload.get("program_source") or None
            # A file must not grant its own hypotheses: a hand-crafted wrapper
            # could otherwise "prove" anything with a single self-hinted Hyp
            # vertex.  The caller opts in with --allow-hypotheses.
            hints = tuple(payload.get("hints", ())) if args.allow_hypotheses else ()
        else:
            certificate = payload
            embedded_source = None
            hints = ()
        # Explicit references beat data from the (untrusted) file: --file,
        # then --suite, and only then the embedded source.  Verifying against
        # an embedded source attests the proof *for that embedded program
        # only* — its fingerprint is printed below so the caller can compare
        # it against a program they actually trust.
        source = override_source or suite_source or embedded_source
        if not source:
            print(
                f"check: {path} does not embed its program source; pass --file or --suite",
                file=sys.stderr,
            )
            errors += 1
            continue
        name = os.path.basename(path)
        # One elaboration per distinct program, not per file: a directory of
        # certificates from one solve run embeds the same source throughout.
        if source not in checkers:
            checkers[source] = _build_checker(source, name)
        checker = checkers[source]
        if checker is None:
            errors += 1
            continue
        if isinstance(certificate, str):
            # A wrapper may (adversarially) carry the certificate as JSON
            # text; normalise so the provenance binding below cannot be
            # sidestepped by the encoding.
            try:
                certificate = json.loads(certificate)
            except ValueError:
                certificate = None
        if not isinstance(certificate, dict):
            print(f"check: {path} does not contain a certificate object", file=sys.stderr)
            errors += 1
            continue
        # Bind the proof to the equation the certificate *claims* to prove:
        # the table's goal label comes from untrusted provenance, so a file
        # whose root proves something other than its stated equation — or
        # that states no equation at all — must be rejected, not labelled
        # verified under the claimed name.
        claimed = str(certificate.get("equation") or "")
        goal = str(certificate.get("goal") or "") or name
        if not claimed:
            rejected += 1
            rows.append({"goal": goal, "status": "REJECTED",
                         "detail": "certificate does not state the equation it proves"})
            continue
        report = checker.check(certificate, hypotheses=hints, goal_equation=claimed)
        row = _check_row(goal, report, certificate)
        if report.ok and report.equation:
            row["detail"] = report.equation  # show what was actually attested
        rows.append(row)
        if not report.ok:
            rejected += 1
        elif args.render:
            rendered.append(_render_checked(goal, certificate))
    if rows:
        print(check_time_table(rows))
        print(
            f"\nchecked {len(rows)} certificate file(s): "
            f"{len(rows) - rejected} verified, {rejected} rejected"
        )
        for checker in checkers.values():
            if checker is not None:
                print(
                    f"program {checker.program.name}: "
                    f"fingerprint {checker.program.fingerprint()}"
                )
    for block in rendered:
        print("\n" + block)
    if errors:
        return 2
    return 1 if rejected else 0


def _check_command(args) -> int:
    if not args.store and not args.certificates:
        print("check: pass --store PATH and/or certificate files", file=sys.stderr)
        return 2
    codes = []
    if args.store:
        codes.append(_check_store(args))
    if args.certificates:
        codes.append(_check_files(args))
    return max(codes)


# ---------------------------------------------------------------------------
# store
# ---------------------------------------------------------------------------


def _store_command(args) -> int:
    store = _open_store(args.store, "store compact")
    if store is None:
        return 2
    with open(args.store, "r", encoding="utf-8") as handle:
        lines_before = sum(1 for line in handle if line.strip())
    store.compact()
    with open(args.store, "r", encoding="utf-8") as handle:
        lines_after = sum(1 for line in handle if line.strip())
    dropped = lines_before - lines_after
    print(
        f"store: compacted {args.store}: {lines_before} -> {lines_after} line(s) "
        f"({dropped} superseded/stale dropped, {store.schema_skipped} of those schema mismatches)"
    )
    return 0


# ---------------------------------------------------------------------------
# serve / submit
# ---------------------------------------------------------------------------


def _serve_command(args) -> int:
    from .service.server import ServiceConfig, serve_forever

    return serve_forever(
        ServiceConfig(
            socket_path=args.socket,
            store_path=args.store,
            library_path=args.library,
            warm_cache_size=args.warm_cache_size,
            jobs=args.jobs,
            timeout=args.timeout,
            hint_limit=args.hint_limit,
            explore=args.explore,
            shutdown_grace=args.shutdown_grace,
            prewarm=args.prewarm,
            serialize_submits=args.serialize_submits,
            client_max_inflight=args.client_max_inflight,
            client_cpu_budget=args.client_cpu_budget,
            trace_path=args.trace,
            trace_max_bytes=args.trace_max_bytes,
        )
    )


def _submit_command(args) -> int:
    from .harness.report import service_summary_table
    from .service.client import ServiceClient, ServiceProtocolError

    conjectures = []
    for spec in args.conjecture:
        name, separator, equation = spec.partition("=")
        if not separator or not name.strip() or not equation.strip():
            print(f"submit: --conjecture wants NAME=EQUATION, got {spec!r}", file=sys.stderr)
            return 2
        conjectures.append((name.strip(), equation.strip()))

    source = None
    if args.file:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            print(f"submit: cannot read {args.file}: {error.strerror or error}", file=sys.stderr)
            return 2

    submitting = bool(source or args.suite or conjectures)
    if not submitting and not args.metrics and not args.shutdown:
        print("submit: nothing to do (pass --suite/--file/--conjecture, --metrics or --shutdown)",
              file=sys.stderr)
        return 2
    if conjectures and source is None and args.suite is None:
        print("submit: --conjecture needs a theory (--suite or --file)", file=sys.stderr)
        return 2

    client = ServiceClient(args.socket, timeout=args.wait, client=args.client)
    code = 0
    try:
        if submitting:
            def on_verdict(verdict: dict) -> None:
                detail = f" [{float(verdict.get('seconds') or 0.0) * 1000:.1f} ms"
                if verdict.get("cached"):
                    detail += ", replayed"
                if verdict.get("hint_steps"):
                    detail += f", {verdict['hint_steps']} hint step(s)"
                print(f"{verdict.get('goal')}: {verdict.get('status')}{detail}]")

            outcome = client.submit(
                suite=args.suite,
                source=source,
                goals=args.goal,
                conjectures=conjectures,
                timeout=args.timeout,
                use_hints=not args.no_hints,
                falsify=args.falsify,
                on_verdict=on_verdict,
            )
            done = outcome.done
            if done.get("rejected"):
                print(f"{done['rejected']} goal(s) rejected by the daemon's client budget")
            summary = (
                f"\n{done.get('proved', 0)}/{done.get('total', 0)} proved, "
                f"{done.get('disproved', 0)} disproved, "
                f"{done.get('store_hits', 0)} replayed from store, "
                f"{done.get('worker_spawns', 0)} worker(s) spawned, "
                f"{done.get('library_hints_used', 0)} library hint step(s) used "
                f"in {float(done.get('seconds') or 0.0):.3f} s"
            )
            if done.get("trace"):
                summary += f" [trace {done['trace']}]"
            print(summary)
            decisive = outcome.proved + outcome.disproved
            code = 0 if decisive == outcome.total else 1
        if args.metrics:
            print(service_summary_table(client.metrics()))
        if args.shutdown:
            client.shutdown()
            print(f"submit: daemon on {args.socket} is shutting down")
    except ServiceProtocolError as error:
        print(f"submit: {error}", file=sys.stderr)
        return 2
    return code


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------


def _trace_command(args) -> int:
    import json as json_module

    from .harness.report import format_table
    from .obs.export import chrome_trace, read_trace, slow_goals, summarise

    try:
        records = read_trace(args.path)
    except FileNotFoundError:
        print(f"trace: no trace file at {args.path}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"trace: cannot read {args.path}: {error.strerror or error}", file=sys.stderr)
        return 2
    if not records:
        print(f"trace: {args.path} holds no spans", file=sys.stderr)
        return 1

    if args.trace_command == "export":
        payload = json_module.dumps(chrome_trace(records), sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"trace: wrote Chrome trace JSON to {args.out} "
                  "(open at https://ui.perfetto.dev)")
        else:
            print(payload)
        return 0

    if args.trace_command == "slow":
        rows = slow_goals(records, threshold=args.threshold, limit=args.limit)
        if not rows:
            print(f"(no goals above {args.threshold:.3f} s queue+solve)")
            return 0
        print(format_table(
            ("goal", "trace", "queued ms", "solve ms", "total ms", "status"),
            [
                (
                    row["goal"],
                    row["trace"],
                    f"{row['queued_seconds'] * 1000.0:.1f}",
                    f"{row['solve_seconds'] * 1000.0:.1f}",
                    f"{row['total_seconds'] * 1000.0:.1f}",
                    row["status"] or "-",
                )
                for row in rows
            ],
        ))
        return 0

    # summary
    summary = summarise(records)
    print(
        f"trace: {args.path} — {summary['spans']} span(s), "
        f"{summary['events']} event(s), {summary['traces']} trace(s)"
    )
    for op_class, stats in sorted(summary["op_classes"].items()):
        # One greppable line per op class (the CI trace-smoke step matches
        # on "op class <name>: <n> span(s)").
        print(
            f"op class {op_class}: {stats['count']} span(s), "
            f"p50 {stats['p50'] * 1000.0:.2f} ms, p95 {stats['p95'] * 1000.0:.2f} ms, "
            f"p99 {stats['p99'] * 1000.0:.2f} ms, max {stats['max'] * 1000.0:.2f} ms"
        )
    print()
    print(format_table(
        ("span", "count", "total s", "p50 ms", "p95 ms", "max ms"),
        [
            (
                name,
                stats["count"],
                f"{stats['total']:.3f}",
                f"{stats['p50'] * 1000.0:.2f}",
                f"{stats['p95'] * 1000.0:.2f}",
                f"{stats['max'] * 1000.0:.2f}",
            )
            for name, stats in sorted(summary["names"].items())
        ],
    ))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    from .engine.store import StoreLockError

    args = build_parser().parse_args(argv)
    try:
        if args.command == "solve":
            return _solve_command(args)
        if args.command == "bench":
            return _bench_command(args)
        if args.command == "profile":
            return _profile_command(args)
        if args.command == "disprove":
            return _disprove_command(args)
        if args.command == "check":
            return _check_command(args)
        if args.command == "store":
            return _store_command(args)
        if args.command == "serve":
            return _serve_command(args)
        if args.command == "submit":
            return _submit_command(args)
        if args.command == "trace":
            return _trace_command(args)
        return _report_command(args)
    except StoreLockError as error:
        # Advisory-lock contention: another process (usually a daemon) owns
        # the file.  One line, no traceback.
        print(f"{args.command}: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into e.g. `head`; exit quietly like other CLI tools.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
