"""Local well-formedness of inference-rule instances (Fig. 3).

Every vertex of a preproof must be a well-formed instance of its rule.  The
checker here validates exactly that, node by node; it is used by the test
suite, by the rewriting-induction translation, and by
:func:`repro.proofs.soundness.local_issues`.

The rules checked are the four rules of Fig. 3 — (Refl), (Reduce), (Subst),
(Case) — plus the two derived rules the implementation applies eagerly
(Section 6): constructor decomposition (Cong) and function extensionality
(FunExt), and the hypothesis pseudo-rule of partial proofs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.equations import Equation
from ..core.matching import match_or_none
from ..core.substitution import Substitution
from ..core.terms import (
    App,
    Sym,
    Term,
    Var,
    apply_term,
    free_vars,
    replace_at,
    spine,
    subterm_at,
)
from ..core.types import DataTy, FunTy
from ..program import Program
from .preproof import (
    RULE_CASE,
    RULE_CONG,
    RULE_FUNEXT,
    RULE_HYP,
    RULE_REDUCE,
    RULE_REFL,
    RULE_SUBST,
    Preproof,
    ProofNode,
)

__all__ = ["check_node", "reachable_by_reduction"]


def reachable_by_reduction(program: Program, source: Term, target: Term, max_steps: int = 2000) -> bool:
    """Is ``target`` reachable from ``source`` by zero or more reduction steps?

    Implemented as a bounded breadth-first search over one-step reducts with a
    fallback to normal-form comparison (sound under the standing confluence
    assumption when ``target`` is itself a normal form).
    """
    from ..rewriting.reduction import is_normal_form, one_step, reducts

    if source == target:
        return True
    seen = {source}
    frontier = [source]
    steps = 0
    while frontier and steps < max_steps:
        new_frontier: List[Term] = []
        for term in frontier:
            for reduct in reducts(program.rules, term):
                steps += 1
                if reduct == target:
                    return True
                if reduct not in seen:
                    seen.add(reduct)
                    new_frontier.append(reduct)
                if steps >= max_steps:
                    break
            if steps >= max_steps:
                break
        frontier = new_frontier
    if is_normal_form(program.rules, target):
        # Generic dispatch on purpose: the checker must not trust the compiled
        # match trees it is (indirectly) auditing.
        normalizer = program.normalizer(compile_rules=False)
        return normalizer.normalize(source) == target
    return False


def _check_refl(node: ProofNode) -> List[str]:
    issues = []
    if not node.equation.is_trivial():
        issues.append(f"node {node.ident}: (Refl) conclusion is not of the form M ≈ M")
    if node.premises:
        issues.append(f"node {node.ident}: (Refl) must not have premises")
    return issues


def _check_reduce(program: Program, proof: Preproof, node: ProofNode) -> List[str]:
    issues = []
    if len(node.premises) != 1:
        return [f"node {node.ident}: (Reduce) must have exactly one premise"]
    premise = proof.node(node.premises[0]).equation
    conclusion = node.equation
    ok = (
        reachable_by_reduction(program, conclusion.lhs, premise.lhs)
        and reachable_by_reduction(program, conclusion.rhs, premise.rhs)
    ) or (
        reachable_by_reduction(program, conclusion.lhs, premise.rhs)
        and reachable_by_reduction(program, conclusion.rhs, premise.lhs)
    )
    if not ok:
        issues.append(
            f"node {node.ident}: (Reduce) premise {premise} is not a reduct of {conclusion}"
        )
    return issues


def _check_subst(proof: Preproof, node: ProofNode) -> List[str]:
    issues: List[str] = []
    if len(node.premises) != 2:
        return [f"node {node.ident}: (Subst) must have a lemma and a continuation premise"]
    lemma = proof.node(node.premises[0]).equation
    continuation = proof.node(node.premises[1]).equation
    conclusion = node.equation
    if node.subst is not None and node.position is not None and node.side is not None:
        issues.extend(_check_subst_with_metadata(node, lemma, continuation, conclusion))
        if not issues:
            return issues
        # Fall through to the existential check: the metadata may simply be stale.
        issues = []
    if not _subst_instance_exists(lemma, continuation, conclusion):
        issues.append(
            f"node {node.ident}: no contextual substitution of lemma {lemma} turns "
            f"{conclusion} into {continuation}"
        )
    return issues


def _check_subst_with_metadata(
    node: ProofNode, lemma: Equation, continuation: Equation, conclusion: Equation
) -> List[str]:
    lemma_from, lemma_to = (lemma.lhs, lemma.rhs)
    if node.lemma_flipped:
        lemma_from, lemma_to = lemma_to, lemma_from
    theta = node.subst
    side = node.side
    position = node.position
    conclusion_side = conclusion.lhs if side == "lhs" else conclusion.rhs
    other_side = conclusion.rhs if side == "lhs" else conclusion.lhs
    try:
        redex = subterm_at(conclusion_side, position)
    except IndexError:
        return [f"node {node.ident}: (Subst) position {position} does not exist"]
    if theta.apply(lemma_from) != redex:
        return [
            f"node {node.ident}: subterm at {position} is {redex}, not the lemma instance "
            f"{theta.apply(lemma_from)}"
        ]
    rewritten = replace_at(conclusion_side, position, theta.apply(lemma_to))
    expected = Equation(rewritten, other_side) if side == "lhs" else Equation(other_side, rewritten)
    if expected != continuation:
        return [
            f"node {node.ident}: continuation should be {expected} but is {continuation}"
        ]
    return []


def _subst_instance_exists(lemma: Equation, continuation: Equation, conclusion: Equation) -> bool:
    """Existential check: some occurrence of a lemma instance explains the step."""
    from ..core.terms import positions

    for lemma_from, lemma_to in ((lemma.lhs, lemma.rhs), (lemma.rhs, lemma.lhs)):
        for side_name in ("lhs", "rhs"):
            conclusion_side = getattr(conclusion, side_name)
            other = conclusion.rhs if side_name == "lhs" else conclusion.lhs
            for position, sub in positions(conclusion_side):
                theta = match_or_none(lemma_from, sub)
                if theta is None:
                    continue
                rewritten = replace_at(conclusion_side, position, theta.apply(lemma_to))
                candidate = (
                    Equation(rewritten, other) if side_name == "lhs" else Equation(other, rewritten)
                )
                if candidate == continuation:
                    return True
    return False


def _check_case(program: Program, proof: Preproof, node: ProofNode) -> List[str]:
    issues: List[str] = []
    var = node.case_var
    if var is None:
        return [f"node {node.ident}: (Case) is missing its case variable"]
    if not isinstance(var.ty, DataTy):
        return [f"node {node.ident}: (Case) variable {var} is not of datatype type"]
    constructors = program.signature.instantiate_constructors(var.ty)
    if len(node.premises) != len(constructors):
        return [
            f"node {node.ident}: (Case) has {len(node.premises)} premises but "
            f"{var.ty} has {len(constructors)} constructors"
        ]
    declared = node.case_constructors or tuple(name for name, _ in constructors)
    for premise_id, con_name in zip(node.premises, declared):
        expected_args = dict(constructors).get(con_name)
        if expected_args is None:
            issues.append(f"node {node.ident}: {con_name} is not a constructor of {var.ty}")
            continue
        premise = proof.node(premise_id).equation
        if not _is_case_premise(node.equation, premise, var, con_name, len(expected_args)):
            issues.append(
                f"node {node.ident}: premise {premise_id} is not the {con_name} instance of "
                f"{node.equation}"
            )
    return issues


def _is_case_premise(
    conclusion: Equation, premise: Equation, var: Var, constructor: str, arity: int
) -> bool:
    """Is ``premise`` the conclusion with ``var`` replaced by a fresh constructor pattern?

    The fresh variables are unknown, so we match: build the pattern with
    placeholder variables and match the expected equation against the premise,
    requiring the matcher to be a renaming that is the identity on the
    variables of the conclusion other than ``var``.
    """
    placeholders = [Var(f"$c{i}", var.ty) for i in range(arity)]
    pattern = apply_term(Sym(constructor), *placeholders)
    subst = Substitution({var.name: pattern})
    expected = conclusion.apply(subst)
    for expected_eq in (expected, expected.flipped()):
        theta = match_or_none(expected_eq.lhs, premise.lhs)
        if theta is None:
            continue
        theta2 = match_or_none(expected_eq.rhs, premise.rhs, dict(theta))
        if theta2 is None:
            continue
        if all(
            isinstance(t, Var) for name, t in theta2.items()
        ) and all(
            (isinstance(t, Var) and t.name == name)
            for name, t in theta2.items()
            if not name.startswith("$c")
        ):
            return True
    return False


def _check_cong(proof: Preproof, node: ProofNode, program: Program) -> List[str]:
    lhs_head, lhs_args = spine(node.equation.lhs)
    rhs_head, rhs_args = spine(node.equation.rhs)
    if not (
        isinstance(lhs_head, Sym)
        and isinstance(rhs_head, Sym)
        and lhs_head.name == rhs_head.name
        and program.signature.is_constructor(lhs_head.name)
        and len(lhs_args) == len(rhs_args)
    ):
        return [f"node {node.ident}: (Cong) conclusion sides are not the same constructor"]
    if len(node.premises) != len(lhs_args):
        return [f"node {node.ident}: (Cong) must have one premise per constructor argument"]
    issues = []
    for premise_id, left, right in zip(node.premises, lhs_args, rhs_args):
        premise = proof.node(premise_id).equation
        if premise != Equation(left, right):
            issues.append(
                f"node {node.ident}: (Cong) premise {premise_id} should be {Equation(left, right)}"
            )
    return issues


def _check_funext(proof: Preproof, node: ProofNode, program: Program) -> List[str]:
    if len(node.premises) != 1:
        return [f"node {node.ident}: (FunExt) must have exactly one premise"]
    premise = proof.node(node.premises[0]).equation
    conclusion = node.equation
    lhs_head, lhs_args = spine(premise.lhs)
    rhs_head, rhs_args = spine(premise.rhs)
    if not lhs_args or not rhs_args:
        return [f"node {node.ident}: (FunExt) premise sides must be applications"]
    if lhs_args[-1] != rhs_args[-1] or not isinstance(lhs_args[-1], Var):
        return [f"node {node.ident}: (FunExt) premise must apply both sides to the same fresh variable"]
    fresh = lhs_args[-1]
    stripped = Equation(_strip_last(premise.lhs), _strip_last(premise.rhs))
    if stripped != conclusion:
        return [f"node {node.ident}: (FunExt) premise does not extend the conclusion"]
    conclusion_vars = {v.name for v in conclusion.variables()}
    if fresh.name in conclusion_vars:
        return [f"node {node.ident}: (FunExt) variable {fresh} is not fresh"]
    return []


def _strip_last(term: Term) -> Term:
    if isinstance(term, App):
        return term.fun
    return term


def check_node(program: Program, proof: Preproof, node: ProofNode) -> List[str]:
    """All local well-formedness issues of a single vertex (empty = well formed)."""
    if node.rule is None:
        return [f"node {node.ident}: open subgoal"]
    if node.rule == RULE_HYP:
        return []
    if node.rule == RULE_REFL:
        return _check_refl(node)
    if node.rule == RULE_REDUCE:
        return _check_reduce(program, proof, node)
    if node.rule == RULE_SUBST:
        return _check_subst(proof, node)
    if node.rule == RULE_CASE:
        return _check_case(program, proof, node)
    if node.rule == RULE_CONG:
        return _check_cong(proof, node, program)
    if node.rule == RULE_FUNEXT:
        return _check_funext(proof, node, program)
    return [f"node {node.ident}: unknown rule {node.rule}"]
