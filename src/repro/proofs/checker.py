"""Independent re-checking of proof certificates.

This is the consumer side of :mod:`repro.proofs.certificate`, and the reason
certificates exist at all: an artifact that only the process that found it can
validate is barely better than a boolean.  :func:`check_certificate` takes the
*source text* of a program and a certificate and re-establishes, from scratch,
everything the proof claims:

1. the program is **re-elaborated** from its surface syntax into a **fresh
   term bank** — no term, rule, or signature object is shared with whatever
   process ran the search;
2. the certificate is decoded into that bank, and its stated program
   fingerprint is compared against the fresh elaboration (a proof about a
   different program is rejected before any rule is looked at);
3. every vertex is checked as a well-formed instance of its inference rule
   (:func:`repro.proofs.inference.check_node` — the Fig. 3 local conditions);
4. the global size-change condition (Theorem 5.2) is recomputed **from
   scratch** over the decoded proof's edge graphs — deliberately *not* via the
   prover's :class:`~repro.sizechange.closure.IncrementalClosure`, so a bug in
   the incremental bookkeeping used during search cannot vouch for its own
   proofs.

Hypothesis vertices (partial proofs, Definition 4.3) are only accepted when
the caller explicitly grants them: a certificate that silently assumes a lemma
is rejected unless that lemma was part of the goal's statement (e.g. a hinted
benchmark run).

For checking many certificates against one program (the ``python -m repro
check`` path over a result store), :class:`CertificateChecker` elaborates the
program once into a private bank and re-uses it per certificate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..core.equations import Equation
from ..core.exceptions import CertificateError, CycleQError
from ..core.interning import TermBank, use_bank
from ..program import Program
from ..sizechange.closure import closure_of, find_violation
from .certificate import ProofCertificate, decode
from .preproof import Preproof

__all__ = ["CheckReport", "CertificateChecker", "check_certificate"]


@dataclass(frozen=True)
class CheckReport:
    """The outcome of independently re-checking one certificate."""

    ok: bool
    """Did the certificate verify (decoded, closed, locally and globally sound)?"""

    goal: str = ""
    equation: str = ""

    locally_sound: bool = False
    globally_sound: bool = False
    closed: bool = False
    fingerprint_ok: bool = True

    issues: Tuple[str, ...] = ()
    """Every problem found (empty when ``ok``)."""

    hypotheses: Tuple[str, ...] = ()
    """Renderings of the hypothesis vertices the proof relies on (partial proofs)."""

    nodes: int = 0
    """Proof vertices checked."""

    seconds: float = 0.0
    """Wall-clock cost of the check (decode + local + global)."""

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        """A one-line rendering for tables and logs."""
        status = "verified" if self.ok else "REJECTED"
        hyp = f" ({len(self.hypotheses)} hypotheses)" if self.hypotheses else ""
        detail = f": {self.issues[0]}" if self.issues else ""
        return f"{status}{hyp} [{self.nodes} vertices, {self.seconds * 1000:.1f} ms]{detail}"


class CertificateChecker:
    """Check certificates against one program, elaborated once into a private bank.

    ``program`` may be surface source text (the independent path: it is
    re-elaborated from scratch inside a bank owned by this checker) or an
    already-built :class:`~repro.program.Program` (the in-process path used by
    tests and by callers that just produced the program themselves).
    """

    def __init__(self, program: Union[str, Program], name: str = "check"):
        if isinstance(program, Program):
            self.bank: Optional[TermBank] = None
            self.program = program
        else:
            from ..lang.loader import load_program  # deferred: checker stays importable sans parser

            self.bank = TermBank(f"cert:{name}")
            with use_bank(self.bank):
                self.program = load_program(program, name=name)

    def check(
        self,
        cert: Union[ProofCertificate, dict, str],
        *,
        hypotheses: Sequence[Union[str, Equation]] = (),
        goal_equation: Union[str, Equation, None] = None,
    ) -> CheckReport:
        """Re-check one certificate; never raises on bad certificates.

        ``hypotheses`` are the lemmas the proof is *allowed* to assume (as
        equation source text or :class:`Equation` objects); any other
        hypothesis vertex is an issue.  ``goal_equation``, when given, must
        match the root vertex's equation — this ties the certificate to the
        goal a store entry or a caller claims it proves.
        """
        if self.bank is not None:
            with use_bank(self.bank):
                return self._check(cert, hypotheses, goal_equation)
        return self._check(cert, hypotheses, goal_equation)

    # -- the actual pipeline ---------------------------------------------------

    def _parse(self, value: Union[str, Equation], what: str, issues: List[str]) -> Optional[Equation]:
        if isinstance(value, Equation):
            return value
        try:
            return self.program.parse_equation(value)
        except CycleQError as error:
            issues.append(f"unparsable {what} {value!r}: {error}")
            return None

    def _check(
        self,
        cert: Union[ProofCertificate, dict, str],
        hypotheses: Sequence[Union[str, Equation]],
        goal_equation: Union[str, Equation, None],
    ) -> CheckReport:
        started = time.perf_counter()
        issues: List[str] = []
        try:
            cert = ProofCertificate.coerce(cert)
        except CertificateError as error:
            return CheckReport(
                ok=False,
                issues=(str(error),),
                seconds=time.perf_counter() - started,
            )

        fingerprint_ok = True
        if cert.program:
            fingerprint_ok = cert.program == self.program.fingerprint()
            if not fingerprint_ok:
                issues.append(
                    "certificate was issued for a different program "
                    f"(certificate {cert.program[:16]}…, checking against "
                    f"{self.program.fingerprint()[:16]}…)"
                )

        try:
            # With a private bank we are already inside use_bank(self.bank);
            # on the pre-built-Program path decode into a throwaway bank so
            # untrusted certificates never intern into the caller's ambient
            # bank (render_certificate takes the same precaution).
            proof = decode(cert) if self.bank is not None else decode(cert, bank=TermBank("cert-decode"))
        except CertificateError as error:
            return CheckReport(
                ok=False,
                goal=cert.goal,
                equation=cert.equation,
                fingerprint_ok=fingerprint_ok,
                issues=tuple(issues) + (str(error),),
                seconds=time.perf_counter() - started,
            )

        issues.extend(self._structural_issues(cert, proof, goal_equation, hypotheses))

        # Local soundness: every vertex a well-formed instance of its rule.
        # local_issues is total on adversarial proofs (dangling premises and
        # raising rule checkers become issues, never exceptions).
        from .soundness import local_issues as collect_local_issues

        local = collect_local_issues(self.program, proof)
        issues.extend(local)

        # Global soundness, from scratch: rebuild every edge's size-change
        # graph from the decoded proof, close under composition, and demand a
        # decreasing self edge of every idempotent self graph.  (The prover's
        # incremental closure is intentionally not consulted.)
        from .soundness import proof_size_change_graphs

        globally_sound = True
        try:
            violation = find_violation(closure_of(proof_size_change_graphs(proof)))
        except Exception as error:  # noqa: BLE001 - closure_of's size budget raises
            # RuntimeError; an adversarial certificate must yield a rejection,
            # never a traceback.
            violation = None
            globally_sound = False
            issues.append(f"size-change analysis failed: {error}")
        if violation is not None:
            globally_sound = False
            issues.append(
                f"global condition violated: idempotent self graph at vertex "
                f"{violation.source} has no decreasing self edge"
            )

        closed = proof.is_closed()
        if not closed:
            issues.append(f"proof has {len(proof.open_nodes())} open subgoal(s)")

        hypothesis_texts = tuple(str(n.equation) for n in proof.hypotheses())
        return CheckReport(
            ok=not issues,
            goal=cert.goal,
            equation=cert.equation,
            locally_sound=not local,
            globally_sound=globally_sound,
            closed=closed,
            fingerprint_ok=fingerprint_ok,
            issues=tuple(issues),
            hypotheses=hypothesis_texts,
            nodes=len(proof),
            seconds=time.perf_counter() - started,
        )

    def _structural_issues(
        self,
        cert: ProofCertificate,
        proof: Preproof,
        goal_equation: Union[str, Equation, None],
        hypotheses: Sequence[Union[str, Equation]],
    ) -> List[str]:
        issues: List[str] = []
        if proof.root is None:
            issues.append("certificate has no root vertex")
        elif goal_equation is not None:
            expected = self._parse(goal_equation, "goal equation", issues)
            if expected is not None and proof.node(proof.root).equation != expected:
                issues.append(
                    f"root equation {proof.node(proof.root).equation} does not match "
                    f"the stated goal {expected}"
                )
        allowed: List[Equation] = []
        for hypothesis in hypotheses:
            parsed = self._parse(hypothesis, "hypothesis", issues)
            if parsed is not None:
                allowed.append(parsed)
        for node in proof.hypotheses():
            if not any(node.equation == granted for granted in allowed):
                issues.append(
                    f"node {node.ident}: proof assumes hypothesis {node.equation} "
                    "that the goal does not grant"
                )
        return issues


def check_certificate(
    program: Union[str, Program],
    cert: Union[ProofCertificate, dict, str],
    *,
    hypotheses: Sequence[Union[str, Equation]] = (),
    goal_equation: Union[str, Equation, None] = None,
) -> CheckReport:
    """Independently re-check one certificate against one program.

    When ``program`` is source text the check is fully independent: the
    program is re-elaborated into a fresh term bank and the certificate is
    decoded there (see the module docstring for the complete pipeline).
    Convenience wrapper over :class:`CertificateChecker` — use the class
    directly to amortise elaboration over many certificates.
    """
    return CertificateChecker(program).check(
        cert, hypotheses=hypotheses, goal_equation=goal_equation
    )
