"""Rendering of preproofs: indented text trees and Graphviz DOT.

The CycleQ plugin optionally outputs "a cyclic proof graph if successful"; this
module provides the equivalent for the reproduction.  The text renderer follows
the paper's presentation: the proof is shown as a tree, nodes that are the
target of a back edge are labelled with their number (``0:``), and a premise
that refers back to such a node is displayed as ``(0)`` without expanding it
again (Remark 3.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .preproof import RULE_SUBST, Preproof, ProofNode

__all__ = ["render_text", "render_dot", "proof_summary", "render_certificate"]


def render_text(proof: Preproof, root: Optional[int] = None) -> str:
    """An indented, human-readable rendering of the proof tree."""
    if root is None:
        root = proof.root
    if root is None:
        return "<empty proof>"
    companions = set(proof.back_edge_targets())
    lines: List[str] = []
    visited: Set[int] = set()

    def visit(ident: int, depth: int) -> None:
        node = proof.node(ident)
        prefix = "  " * depth
        label = f"{ident}: " if ident in companions else ""
        rule = node.rule or "open"
        detail = _rule_detail(node)
        lines.append(f"{prefix}{label}{node.equation}   [{rule}{detail}]")
        if ident in visited:
            return
        visited.add(ident)
        for premise in node.premises:
            if premise in visited and premise in companions:
                lines.append("  " * (depth + 1) + f"({premise})")
            else:
                visit(premise, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def _rule_detail(node: ProofNode) -> str:
    if node.rule == "Case" and node.case_var is not None:
        return f" on {node.case_var.name}"
    if node.rule == RULE_SUBST and node.premises:
        return f" lemma {node.premises[0]}"
    return ""


def render_dot(proof: Preproof, name: str = "proof") -> str:
    """A Graphviz DOT rendering of the underlying proof graph."""
    lines = [f"digraph {name} {{", "  node [shape=box, fontname=\"monospace\"];"]
    for node in proof.nodes:
        rule = node.rule or "open"
        label = f"{node.ident}: {node.equation}\\n({rule})"
        label = label.replace('"', "'")
        lines.append(f"  n{node.ident} [label=\"{label}\"];")
    for source, index, target in proof.edges():
        node = proof.node(source)
        style = ""
        if node.rule == RULE_SUBST and index == 0:
            style = " [style=dashed, label=\"lemma\"]"
        lines.append(f"  n{source} -> n{target}{style};")
    lines.append("}")
    return "\n".join(lines)


def render_certificate(cert, dot: bool = False) -> str:
    """Render a serialized certificate without any pre-existing proof objects.

    Accepts a :class:`~repro.proofs.certificate.ProofCertificate`, its dict
    form, or JSON text; the proof is decoded into a fresh term bank (nothing
    is interned into the caller's bank) and rendered with :func:`render_text`
    (or :func:`render_dot` when ``dot`` is true).
    """
    from ..core.interning import TermBank
    from .certificate import ProofCertificate, decode

    cert = ProofCertificate.coerce(cert)
    proof = decode(cert, bank=TermBank("render"))
    header = []
    if cert.goal:
        header.append(f"-- goal: {cert.goal}")
    if cert.program:
        header.append(f"-- program: {cert.program[:16]}…")
    body = render_dot(proof, name=cert.goal or "proof") if dot else render_text(proof)
    return "\n".join(header + [body]) if header and not dot else body


def proof_summary(proof: Preproof) -> str:
    """A one-paragraph summary: size, rule usage, companions."""
    counts = proof.rule_counts()
    companions = proof.back_edge_targets()
    rules = ", ".join(f"{rule}: {count}" for rule, count in sorted(counts.items()))
    return (
        f"{len(proof)} vertices ({rules}); "
        f"{len(companions)} cycle target(s): {list(companions)}"
    )
