"""Cyclic preproofs (Definition 3.1) and partial proofs (Definition 4.3).

A preproof is a finite set of vertices, each carrying an equation, the
inference rule justifying it, and an ordered list of premise vertices.  Cycles
arise because a premise may be *any* vertex of the proof — in particular an
ancestor ("bud"/"companion" in the classical presentation) or even a cousin
when it is used as the lemma of a (Subst) instance.

The class below is deliberately mutable: the prover grows a preproof node by
node and rolls additions back when a branch of the search fails.  Once search
succeeds the structure is frozen in spirit — the checking functions in
:mod:`repro.proofs.soundness` treat it as immutable data.

Partial proofs add a set of *hypothesis* vertices (rule :data:`RULE_HYP`) that
need no justification; they are what the translation from rewriting induction
produces (Theorem 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.equations import Equation
from ..core.exceptions import ProofError
from ..core.substitution import Substitution
from ..core.terms import Position, Term, Var

__all__ = [
    "RULE_REFL",
    "RULE_REDUCE",
    "RULE_SUBST",
    "RULE_CASE",
    "RULE_CONG",
    "RULE_FUNEXT",
    "RULE_HYP",
    "ALL_RULES",
    "ProofNode",
    "Preproof",
]

RULE_REFL = "Refl"
RULE_REDUCE = "Reduce"
RULE_SUBST = "Subst"
RULE_CASE = "Case"
RULE_CONG = "Cong"
RULE_FUNEXT = "FunExt"
RULE_HYP = "Hyp"

ALL_RULES = (
    RULE_REFL,
    RULE_REDUCE,
    RULE_SUBST,
    RULE_CASE,
    RULE_CONG,
    RULE_FUNEXT,
    RULE_HYP,
)


@dataclass
class ProofNode:
    """One vertex of a preproof.

    ``rule`` is ``None`` while the node is still an open subgoal.  The
    remaining fields carry rule-specific data used for local well-formedness
    checking, size-change graph extraction and rendering:

    * (Case): ``case_var`` is the variable analysed and ``case_constructors``
      lists, per premise, the constructor that premise corresponds to.
    * (Subst): ``premises[0]`` is the lemma vertex, ``premises[1]`` the
      continuation; ``subst`` is θ, ``position``/``side`` locate the rewritten
      occurrence inside the conclusion, ``lemma_flipped`` records whether the
      lemma was used right-to-left.
    """

    ident: int
    equation: Equation
    rule: Optional[str] = None
    premises: List[int] = field(default_factory=list)
    case_var: Optional[Var] = None
    case_constructors: Tuple[str, ...] = ()
    subst: Optional[Substitution] = None
    position: Optional[Position] = None
    side: Optional[str] = None
    lemma_flipped: bool = False
    note: str = ""

    @property
    def is_open(self) -> bool:
        """Is the node still an unjustified subgoal?"""
        return self.rule is None

    @property
    def is_hypothesis(self) -> bool:
        """Is the node a hypothesis of a partial proof?"""
        return self.rule == RULE_HYP

    def variables(self) -> Tuple[Var, ...]:
        """The free variables of the node's equation."""
        return self.equation.variables()

    def variable_names(self) -> Tuple[str, ...]:
        """The names of the free variables of the node's equation."""
        return self.equation.variable_names()

    def __str__(self) -> str:
        rule = self.rule or "?"
        return f"[{self.ident}] {self.equation}   ({rule})"


class Preproof:
    """A (possibly partial) cyclic preproof."""

    def __init__(self) -> None:
        self._nodes: Dict[int, ProofNode] = {}
        self._next_id = 0
        self.root: Optional[int] = None

    # -- construction -----------------------------------------------------------

    def add_node(self, equation: Equation, rule: Optional[str] = None, **data) -> ProofNode:
        """Create a new vertex carrying ``equation`` and return it."""
        node = ProofNode(ident=self._next_id, equation=equation, rule=rule, **data)
        self._nodes[node.ident] = node
        if self.root is None:
            self.root = node.ident
        self._next_id += 1
        return node

    def remove_node(self, ident: int) -> None:
        """Remove a vertex (used when the prover backtracks)."""
        self._nodes.pop(ident, None)
        if self.root == ident:
            self.root = None

    def restore_node(self, node: ProofNode) -> ProofNode:
        """Insert a fully built vertex under its own identifier.

        Used when rehydrating a proof from a serialized certificate
        (:mod:`repro.proofs.certificate`), where vertex identifiers must be
        preserved exactly (premise lists reference them).  Raises
        :class:`ProofError` if the identifier is already taken.
        """
        if node.ident in self._nodes:
            raise ProofError(f"duplicate proof vertex: {node.ident}")
        self._nodes[node.ident] = node
        self._next_id = max(self._next_id, node.ident + 1)
        return node

    # -- access -------------------------------------------------------------------

    def node(self, ident: int) -> ProofNode:
        """The vertex with the given identifier."""
        try:
            return self._nodes[ident]
        except KeyError:
            raise ProofError(f"no such proof vertex: {ident}") from None

    def __contains__(self, ident: int) -> bool:
        return ident in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[ProofNode]:
        return iter(sorted(self._nodes.values(), key=lambda n: n.ident))

    @property
    def nodes(self) -> Tuple[ProofNode, ...]:
        """All vertices ordered by identifier."""
        return tuple(sorted(self._nodes.values(), key=lambda n: n.ident))

    def open_nodes(self) -> Tuple[ProofNode, ...]:
        """Vertices that are still unjustified subgoals."""
        return tuple(n for n in self.nodes if n.is_open)

    def hypotheses(self) -> Tuple[ProofNode, ...]:
        """The hypothesis vertices of a partial proof."""
        return tuple(n for n in self.nodes if n.is_hypothesis)

    def is_closed(self) -> bool:
        """Does every vertex carry a rule (no open subgoals)?"""
        return not self.open_nodes()

    def is_partial(self) -> bool:
        """Does the proof rely on hypotheses (Definition 4.3)?"""
        return bool(self.hypotheses())

    # -- graph structure ---------------------------------------------------------------

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """All edges ``(vertex, premise_index, premise_vertex)`` of the underlying graph."""
        for node in self.nodes:
            for index, premise in enumerate(node.premises):
                yield node.ident, index, premise

    def successors(self, ident: int) -> Tuple[int, ...]:
        """The premises of a vertex."""
        return tuple(self.node(ident).premises)

    def back_edge_targets(self) -> Tuple[int, ...]:
        """The "companions" of the proof: targets of cycle-forming edges.

        A premise edge ``(v, w)`` forms a cycle exactly when ``v`` is reachable
        from ``w``; the returned vertices are the targets of such edges.
        """
        targets = set()
        for source, _index, target in self.edges():
            if target in self._nodes and source in self.reachable_from(target):
                targets.add(target)
        return tuple(sorted(targets))

    def reachable_from(self, start: int) -> Tuple[int, ...]:
        """All vertices reachable from ``start`` along premise edges."""
        seen = set()
        stack = [start]
        while stack:
            current = stack.pop()
            if current in seen or current not in self._nodes:
                continue
            seen.add(current)
            stack.extend(self.node(current).premises)
        return tuple(sorted(seen))

    def cycles_exist(self) -> bool:
        """Does the underlying graph contain a cycle?"""
        colour: Dict[int, int] = {}

        def visit(vertex: int) -> bool:
            colour[vertex] = 1
            for premise in self.node(vertex).premises:
                if premise not in self._nodes:
                    continue
                state = colour.get(premise, 0)
                if state == 1:
                    return True
                if state == 0 and visit(premise):
                    return True
            colour[vertex] = 2
            return False

        return any(visit(n.ident) for n in self.nodes if colour.get(n.ident, 0) == 0)

    # -- statistics -----------------------------------------------------------------------

    def rule_counts(self) -> Dict[str, int]:
        """How many vertices are justified by each rule."""
        counts: Dict[str, int] = {}
        for node in self.nodes:
            key = node.rule or "open"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Preproof({len(self)} vertices, root={self.root})"
