"""Local and global soundness of preproofs.

* *Local* soundness (Corollary 3.2): every vertex must be a well-formed
  instance of its rule — delegated to :mod:`repro.proofs.inference`.
* *Global* soundness (Definition 3.6, Theorem 3.4): every infinite path must
  have a suffix carrying an infinitely progressing trace.  Restricting to
  variable traces over the substructural order, Section 5 reduces this to a
  size-change condition (Theorem 5.2): extract a size-change graph for every
  edge of the proof (Definition 5.3), close under composition, and require a
  decreasing self edge of every idempotent self graph.

Both a from-scratch checker (:func:`check_global`) and statistics-friendly
entry points used by the ablation benchmarks are provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.terms import Var
from ..program import Program
from ..sizechange.closure import IncrementalClosure, check_global_condition, closure_of, find_violation
from ..sizechange.graph import DECREASE, NO_DECREASE, SizeChangeGraph, identity_graph
from .inference import check_node
from .preproof import RULE_CASE, RULE_SUBST, Preproof, ProofNode

__all__ = [
    "edge_size_change_graph",
    "proof_size_change_graphs",
    "local_issues",
    "check_local",
    "check_global",
    "SoundnessReport",
    "check_proof",
]


def edge_size_change_graph(proof: Preproof, source: int, premise_index: int) -> SizeChangeGraph:
    """The canonical size-change graph of one edge of the proof (Definition 5.3)."""
    node = proof.node(source)
    target = node.premises[premise_index]
    target_node = proof.node(target)
    source_vars = node.equation.variable_names()
    target_vars = target_node.equation.variable_names()
    common = [name for name in source_vars if name in target_vars]

    if node.rule == RULE_SUBST and premise_index == 0:
        # Edge to the lemma: x ≃ y whenever theta(y) = x.
        theta = node.subst
        edges = []
        if theta is not None:
            for lemma_var in target_vars:
                bound = theta.get(lemma_var)
                if isinstance(bound, Var) and bound.name in source_vars:
                    edges.append((bound.name, lemma_var, NO_DECREASE))
        return SizeChangeGraph.make(source, target, edges)

    if node.rule == RULE_CASE and node.case_var is not None:
        case_name = node.case_var.name
        fresh = [name for name in target_vars if name not in source_vars]
        edges = [(case_name, name, DECREASE) for name in fresh]
        edges.extend((name, name, NO_DECREASE) for name in common)
        return SizeChangeGraph.make(source, target, edges)

    # (Reduce), (Cong), (FunExt), (Refl) — identity on the common variables.
    return identity_graph(source, target, common)


def proof_size_change_graphs(proof: Preproof) -> List[SizeChangeGraph]:
    """The size-change graphs of every edge of the proof."""
    graphs: List[SizeChangeGraph] = []
    for node in proof.nodes:
        for index in range(len(node.premises)):
            graphs.append(edge_size_change_graph(proof, node.ident, index))
    return graphs


def local_issues(program: Program, proof: Preproof) -> List[str]:
    """All local well-formedness issues of the proof (empty list = locally sound).

    Total on arbitrary (e.g. decoded-from-certificate, possibly adversarial)
    proofs: dangling premises are reported up front and exempt their vertex
    from rule checking, and a rule checker that raises on malformed vertex
    data contributes an issue instead of propagating.
    """
    issues: List[str] = []
    dangling = set()
    for source, _index, target in proof.edges():
        if target not in proof:
            issues.append(f"node {source}: dangling premise {target}")
            dangling.add(source)
    for node in proof.nodes:
        if node.ident in dangling:
            continue
        try:
            issues.extend(check_node(program, proof, node))
        except Exception as error:  # noqa: BLE001 - malformed input must report, not raise
            issues.append(f"node {node.ident}: rule check failed: {error}")
    return issues


def check_local(program: Program, proof: Preproof) -> bool:
    """Is every vertex a well-formed instance of its rule?"""
    return not local_issues(program, proof)


def check_global(proof: Preproof, incremental: bool = False) -> bool:
    """Does the proof satisfy the global correctness condition (Theorem 5.2)?

    With ``incremental=True`` the check replays the edges through an
    :class:`IncrementalClosure`, mirroring what the prover does during search;
    the result is identical, the flag exists for the ablation benchmarks.
    """
    graphs = proof_size_change_graphs(proof)
    if incremental:
        closure = IncrementalClosure()
        for graph in graphs:
            result = closure.add(graph)
            if result.violation is not None:
                return False
        return True
    return check_global_condition(graphs)


@dataclass
class SoundnessReport:
    """The combined result of local and global soundness checking."""

    locally_sound: bool
    globally_sound: bool
    closed: bool
    issues: Tuple[str, ...] = ()
    violation: Optional[SizeChangeGraph] = None

    @property
    def is_proof(self) -> bool:
        """Is the preproof a genuine (total or partial) proof?"""
        return self.locally_sound and self.globally_sound and self.closed

    def __bool__(self) -> bool:
        return self.is_proof


def check_proof(program: Program, proof: Preproof) -> SoundnessReport:
    """Full validation: local well-formedness, closedness, and the global condition."""
    issues = local_issues(program, proof)
    graphs = proof_size_change_graphs(proof)
    violation = find_violation(closure_of(graphs))
    return SoundnessReport(
        locally_sound=not issues,
        globally_sound=violation is None,
        closed=proof.is_closed(),
        issues=tuple(issues),
        violation=violation,
    )
