"""Traces along preproof paths (Definitions 3.4–3.6).

A trace assigns a term to every vertex along a path, subject to constraints
determined by the rule applied at each vertex; a *progress point* is a strict
decrease.  The global correctness condition demands that every infinite path
has a suffix carrying a trace with infinitely many progress points.

This module validates *explicit* traces — it is used by the test suite to check
the hand-written traces of the paper's examples (e.g. the ``x, x', x, ...``
trace of the commutativity proof in Fig. 4) — and can enumerate the variable
traces of a finite path, which is how the size-change machinery of Section 5 is
connected back to the declarative definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.substitution import Substitution
from ..core.terms import Sym, Term, Var, apply_term
from ..rewriting.orders import SubtermOrder, TermOrder
from .preproof import RULE_CASE, RULE_SUBST, Preproof, ProofNode

__all__ = ["TraceStep", "TraceCheckResult", "check_trace", "variable_traces"]


@dataclass(frozen=True)
class TraceStep:
    """One step of a validated trace."""

    vertex: int
    term: Term
    progress: bool


@dataclass
class TraceCheckResult:
    """The outcome of validating an explicit trace."""

    valid: bool
    steps: Tuple[TraceStep, ...] = ()
    progress_points: Tuple[int, ...] = ()
    reason: str = ""

    def __bool__(self) -> bool:
        return self.valid


def _case_instantiation(proof: Preproof, node: ProofNode, premise_id: int) -> Optional[Substitution]:
    """The substitution ``[k x_0 ... x_n / x]`` of a (Case) premise."""
    if node.case_var is None:
        return None
    index = node.premises.index(premise_id)
    constructor = node.case_constructors[index] if node.case_constructors else None
    if constructor is None:
        return None
    premise = proof.node(premise_id)
    fresh = [v for v in premise.equation.variables() if v.name not in node.equation.variable_names()]
    pattern = apply_term(Sym(constructor), *fresh)
    return Substitution({node.case_var.name: pattern})


def check_trace(
    proof: Preproof,
    path: Sequence[int],
    terms: Sequence[Term],
    order: Optional[TermOrder] = None,
) -> TraceCheckResult:
    """Validate that ``terms`` is a ≤-trace along ``path`` (Definition 3.5).

    ``path`` must be a valid path of the preproof (each vertex a premise of the
    previous one); ``terms`` must have the same length.  Returns the progress
    points found.
    """
    order = order or SubtermOrder()
    if len(path) != len(terms):
        return TraceCheckResult(valid=False, reason="path and trace have different lengths")
    steps: List[TraceStep] = []
    progress: List[int] = []
    for i in range(len(path) - 1):
        vertex = path[i]
        nxt = path[i + 1]
        node = proof.node(vertex)
        if nxt not in node.premises:
            return TraceCheckResult(
                valid=False, reason=f"{nxt} is not a premise of {vertex}: not a path"
            )
        current, following = terms[i], terms[i + 1]
        ok, strict = _trace_step_ok(proof, node, nxt, current, following, order)
        if not ok:
            return TraceCheckResult(
                valid=False,
                reason=f"trace constraint violated at vertex {vertex}: {following} vs {current}",
            )
        steps.append(TraceStep(vertex=vertex, term=current, progress=strict))
        if strict:
            progress.append(i)
    steps.append(TraceStep(vertex=path[-1], term=terms[-1], progress=False))
    return TraceCheckResult(valid=True, steps=tuple(steps), progress_points=tuple(progress))


def _trace_step_ok(
    proof: Preproof,
    node: ProofNode,
    premise_id: int,
    current: Term,
    following: Term,
    order: TermOrder,
) -> Tuple[bool, bool]:
    """Check one trace constraint; returns ``(satisfied, strict_decrease)``."""
    if node.rule == RULE_CASE:
        inst = _case_instantiation(proof, node, premise_id)
        if inst is None:
            return False, False
        target = inst.apply(current)
        if following == target:
            return True, False
        if order.greater(target, following):
            return True, True
        return False, False
    if node.rule == RULE_SUBST and node.premises and premise_id == node.premises[0]:
        theta = node.subst or Substitution()
        instantiated = theta.apply(following)
        if instantiated == current:
            return True, False
        if order.greater(current, instantiated):
            return True, True
        return False, False
    # (Reduce), (Cong), (FunExt), the continuation of (Subst), ...
    if following == current:
        return True, False
    if order.greater(current, following):
        return True, True
    return False, False


def variable_traces(
    proof: Preproof, path: Sequence[int], order: Optional[TermOrder] = None
) -> List[TraceCheckResult]:
    """All traces along ``path`` whose terms are single variables.

    This brute-force enumeration is exponential in principle but the paths we
    inspect in tests are short; the size-change closure is the efficient
    representation of the same information (Lemma 5.1).
    """
    order = order or SubtermOrder()
    results: List[TraceCheckResult] = []

    def extend(index: int, chosen: List[Term]) -> None:
        if index == len(path):
            result = check_trace(proof, path, chosen, order)
            if result:
                results.append(result)
            return
        node = proof.node(path[index])
        for var in node.equation.variables():
            extend(index + 1, chosen + [var])

    extend(0, [])
    return results
