"""Portable proof certificates: a versioned, bank-independent preproof encoding.

A successful CycleQ search yields a *checkable artifact* — a cyclic preproof
whose local rule instances and global size-change condition can be verified
independently of how the proof was found.  In-memory, however, a
:class:`~repro.proofs.preproof.Preproof` is anything but portable: its
equations are hash-consed terms tied to one :class:`~repro.core.interning.TermBank`
in one process.  This module turns a preproof into plain JSON-able data and
back:

* :func:`encode` — ``Preproof -> ProofCertificate``.  Terms are flattened into
  a *shared table*: every distinct node (variable, symbol, application) appears
  once and is referenced by index, so the certificate inherits the compactness
  of the hash-consed DAG instead of exploding shared subterms into trees.
  Types get the same treatment (variables carry their type, which the (Case)
  checker needs).
* :func:`decode` — ``ProofCertificate -> Preproof``, rebuilding the terms
  through whichever bank is current (or an explicitly supplied one), which is
  exactly the "terms never cross process boundaries" discipline of the engine:
  the *certificate* crosses the boundary, the terms are reborn on the other
  side.

Certificates are self-describing (``format``/``version`` fields) and
deterministic: :meth:`ProofCertificate.to_json` is canonical (sorted keys, no
whitespace), so equal proofs produce byte-identical certificates and
:meth:`ProofCertificate.digest` is a stable content address.

The independent checker that consumes certificates lives in
:mod:`repro.proofs.checker`; it deliberately re-runs the local and global
soundness checks from scratch rather than trusting anything recorded here
beyond the proof structure itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.exceptions import CertificateError
from ..core.interning import TermBank, use_bank
from ..core.substitution import Substitution
from ..core.terms import App, Sym, Term, Var
from ..core.types import DataTy, FunTy, Type, TypeVar
from .preproof import ALL_RULES, Preproof, ProofNode

__all__ = [
    "CERTIFICATE_FORMAT",
    "CERTIFICATE_VERSION",
    "ProofCertificate",
    "encode",
    "decode",
    "canonical_json",
]


def canonical_json(payload: dict) -> str:
    """The canonical JSON rendering used everywhere certificates are sized,
    hashed, or compared: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))

CERTIFICATE_FORMAT = "cycleq.preproof"
"""Format marker carried by every certificate."""

CERTIFICATE_VERSION = 1
"""Current encoding version; the checker rejects versions it does not know."""

# Tags of the table entries.  Types: ("v", name) type variable, ("d", name,
# [arg indices]) datatype, ("f", arg index, res index) function type.  Terms:
# ("v", name, type index) variable, ("s", name) symbol, ("a", fun index,
# arg index) application.


@dataclass(frozen=True)
class ProofCertificate:
    """A serialized cyclic preproof, independent of any term bank or process.

    ``types`` and ``terms`` are shared tables: entries may reference earlier
    entries by index (strictly earlier, so the tables are self-delimiting and
    cycle-free).  ``nodes`` carries one record per proof vertex under its
    original identifier; ``root`` is the goal vertex.  ``program`` is the
    :meth:`repro.program.Program.fingerprint` of the program the proof is
    about, ``goal``/``equation`` are provenance for reports and sanity checks.
    """

    program: str = ""
    goal: str = ""
    equation: str = ""
    types: Tuple[tuple, ...] = ()
    terms: Tuple[tuple, ...] = ()
    nodes: Tuple[dict, ...] = ()
    root: Optional[int] = None
    version: int = CERTIFICATE_VERSION
    format: str = CERTIFICATE_FORMAT

    # -- sizes -----------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of proof vertices."""
        return len(self.nodes)

    @property
    def term_count(self) -> int:
        """Number of distinct (shared) term nodes in the table."""
        return len(self.terms)

    def byte_size(self) -> int:
        """Size of the canonical JSON encoding in bytes."""
        return len(self.to_json().encode("utf-8"))

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-able dict of primitives (lists, dicts, strings, ints)."""
        return {
            "format": self.format,
            "version": self.version,
            "program": self.program,
            "goal": self.goal,
            "equation": self.equation,
            "types": [_entry_as_lists(entry) for entry in self.types],
            "terms": [_entry_as_lists(entry) for entry in self.terms],
            "nodes": [_node_copy(node) for node in self.nodes],
            "root": self.root,
        }

    def to_json(self) -> str:
        """The canonical JSON rendering (sorted keys, no whitespace)."""
        return canonical_json(self.to_dict())

    def digest(self) -> str:
        """A stable sha256 content address of the canonical encoding."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, payload: dict) -> "ProofCertificate":
        """Rebuild a certificate from :meth:`to_dict` output.

        Raises :class:`~repro.core.exceptions.CertificateError` on unknown
        formats/versions or structurally broken payloads.
        """
        if not isinstance(payload, dict):
            raise CertificateError(f"certificate payload must be an object, got {type(payload).__name__}")
        fmt = payload.get("format")
        if fmt != CERTIFICATE_FORMAT:
            raise CertificateError(f"unknown certificate format {fmt!r}")
        version = payload.get("version")
        if version != CERTIFICATE_VERSION:
            raise CertificateError(
                f"unsupported certificate version {version!r} (this build reads version {CERTIFICATE_VERSION})"
            )
        try:
            types = tuple(_entry_as_tuples(entry) for entry in payload.get("types", ()))
            terms = tuple(_entry_as_tuples(entry) for entry in payload.get("terms", ()))
            node_records = []
            for node in payload.get("nodes", ()):
                if not isinstance(node, dict):
                    raise CertificateError(f"proof vertex must be an object, got {node!r}")
                node_records.append(_node_copy(node))
            nodes = tuple(node_records)
        except CertificateError:
            raise
        except (TypeError, ValueError, AttributeError) as error:
            raise CertificateError(f"malformed certificate tables: {error}") from None
        root = payload.get("root")
        if root is not None and not isinstance(root, int):
            raise CertificateError(f"certificate root must be a vertex id, got {root!r}")
        return cls(
            program=str(payload.get("program", "")),
            goal=str(payload.get("goal", "")),
            equation=str(payload.get("equation", "")),
            types=types,
            terms=terms,
            nodes=nodes,
            root=root,
        )

    @classmethod
    def from_json(cls, text: str) -> "ProofCertificate":
        """Rebuild a certificate from its JSON rendering."""
        try:
            payload = json.loads(text)
        except ValueError as error:
            raise CertificateError(f"certificate is not valid JSON: {error}") from None
        return cls.from_dict(payload)

    @classmethod
    def coerce(cls, value: Union["ProofCertificate", dict, str]) -> "ProofCertificate":
        """Normalise a certificate given as object, dict, or JSON text."""
        if isinstance(value, ProofCertificate):
            return value
        if isinstance(value, str):
            return cls.from_json(value)
        return cls.from_dict(value)


def _node_copy(node: dict) -> dict:
    """A copy of a node record that shares no mutable containers.

    Used on both (de)serialization directions so that certificates are truly
    value-like: a caller mutating the lists inside a ``to_dict()`` result (or
    the payload it fed to ``from_dict``) cannot retroactively change a frozen
    certificate's bytes, digest, or equality.
    """
    return {
        key: (
            dict(value)
            if isinstance(value, dict)
            else list(value)
            if isinstance(value, (list, tuple))
            else value
        )
        for key, value in node.items()
    }


def _entry_as_lists(entry):
    """Normalise a table entry to lists all the way down (the JSON shape)."""
    return [
        _entry_as_lists(item) if isinstance(item, (list, tuple)) else item for item in entry
    ]


def _entry_as_tuples(entry):
    """Normalise a table entry to tuples all the way down (the in-memory shape).

    Kept in sync with :func:`_entry_as_lists` so that
    ``from_dict(to_dict(cert)) == cert`` holds — datatype entries nest an
    argument list (``["d", "List", [0]]``) that must not survive as a list on
    one side and a tuple on the other.
    """
    return tuple(
        _entry_as_tuples(item) if isinstance(item, (list, tuple)) else item for item in entry
    )


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


class _Tables:
    """Shared type/term tables under construction (encoder side)."""

    def __init__(self) -> None:
        self.types: List[tuple] = []
        self.terms: List[tuple] = []
        self._type_index: Dict[Type, int] = {}
        # Keyed by node identity: within one bank structurally equal terms are
        # the same object, so the table inherits the hash-consed sharing.  A
        # term from another bank simply gets its own entries — correct, just
        # less shared.
        self._term_index: Dict[int, int] = {}

    def type_ref(self, ty: Type) -> int:
        index = self._type_index.get(ty)
        if index is not None:
            return index
        if isinstance(ty, TypeVar):
            entry = ("v", ty.name)
        elif isinstance(ty, DataTy):
            entry = ("d", ty.name, tuple(self.type_ref(a) for a in ty.args))
        elif isinstance(ty, FunTy):
            entry = ("f", self.type_ref(ty.arg), self.type_ref(ty.res))
        else:
            raise CertificateError(f"cannot encode type {ty!r}")
        index = self._type_index.get(ty)
        if index is not None:  # the recursive calls may have inserted it
            return index
        self.types.append(entry)
        self._type_index[ty] = len(self.types) - 1
        return len(self.types) - 1

    def term_ref(self, term: Term) -> int:
        """Append ``term`` (post-order, iterative) and return its index."""
        existing = self._term_index.get(id(term))
        if existing is not None:
            return existing
        stack = [term]
        while stack:
            t = stack[-1]
            if id(t) in self._term_index:
                stack.pop()
                continue
            cls = t.__class__
            if cls is App:
                pending = False
                if id(t.fun) not in self._term_index:
                    stack.append(t.fun)
                    pending = True
                if id(t.arg) not in self._term_index:
                    stack.append(t.arg)
                    pending = True
                if pending:
                    continue
                stack.pop()
                entry = ("a", self._term_index[id(t.fun)], self._term_index[id(t.arg)])
            elif cls is Var:
                stack.pop()
                entry = ("v", t.name, self.type_ref(t.ty))
            elif cls is Sym:
                stack.pop()
                entry = ("s", t.name)
            else:
                raise CertificateError(f"cannot encode extended term node {t!r}")
            self.terms.append(entry)
            self._term_index[id(t)] = len(self.terms) - 1
        return self._term_index[id(term)]


def _encode_node(node: ProofNode, tables: _Tables) -> dict:
    record: dict = {
        "id": node.ident,
        "eq": [tables.term_ref(node.equation.lhs), tables.term_ref(node.equation.rhs)],
        "rule": node.rule,
        "premises": list(node.premises),
    }
    if node.case_var is not None:
        record["case_var"] = tables.term_ref(node.case_var)
    if node.case_constructors:
        record["cons"] = list(node.case_constructors)
    if node.subst is not None:
        record["subst"] = {name: tables.term_ref(term) for name, term in node.subst.items()}
    if node.position is not None:
        record["pos"] = list(node.position)
    if node.side is not None:
        record["side"] = node.side
    if node.lemma_flipped:
        record["flipped"] = True
    return record


def encode(
    proof: Preproof,
    *,
    program_fingerprint: str = "",
    goal_name: str = "",
    equation: str = "",
) -> ProofCertificate:
    """Serialize a preproof into a portable :class:`ProofCertificate`.

    ``program_fingerprint`` should be the owning program's
    :meth:`~repro.program.Program.fingerprint`, so the checker can refuse to
    validate the proof against a different program.  ``equation`` defaults to
    the rendering of the root vertex's equation.

    Only the subgraph reachable from the root is serialized.  The prover's
    working preproof can hold hypothesis vertices that were offered as hints
    but never discharged a subgoal; a certificate that carried them would
    claim assumptions the proof does not use (and an unhinted checker would
    rightly reject it).  Vertex identifiers are preserved, so pruning never
    renumbers premises.
    """
    keep = None
    if proof.root is not None and proof.root in proof:
        keep = set()
        frontier = [proof.root]
        while frontier:
            ident = frontier.pop()
            if ident in keep:
                continue
            keep.add(ident)
            frontier.extend(proof.node(ident).premises)
    tables = _Tables()
    nodes = tuple(
        _encode_node(node, tables)
        for node in proof.nodes
        if keep is None or node.ident in keep
    )
    if not equation and proof.root is not None and proof.root in proof:
        equation = str(proof.node(proof.root).equation)
    return ProofCertificate(
        program=program_fingerprint,
        goal=goal_name,
        equation=equation,
        types=tuple(tables.types),
        terms=tuple(tables.terms),
        nodes=nodes,
        root=proof.root,
    )


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _decode_types(entries: Sequence[tuple]) -> List[Type]:
    types: List[Type] = []
    for index, entry in enumerate(entries):
        try:
            tag = entry[0]
            if tag == "v":
                types.append(TypeVar(str(entry[1])))
            elif tag == "d":
                args = tuple(types[_back_ref(a, index, "type")] for a in entry[2])
                types.append(DataTy(str(entry[1]), args))
            elif tag == "f":
                types.append(
                    FunTy(
                        types[_back_ref(entry[1], index, "type")],
                        types[_back_ref(entry[2], index, "type")],
                    )
                )
            else:
                raise CertificateError(f"unknown type tag {tag!r}")
        except (IndexError, TypeError) as error:
            raise CertificateError(f"broken type table entry {index}: {error}") from None
    return types


def _back_ref(value, limit: int, what: str) -> int:
    """Validate a table back-reference: an int strictly before ``limit``."""
    if not isinstance(value, int) or not 0 <= value < limit:
        raise CertificateError(f"{what} reference {value!r} is not a previous table index")
    return value


def _decode_terms(entries: Sequence[tuple], types: List[Type]) -> List[Term]:
    terms: List[Term] = []
    for index, entry in enumerate(entries):
        try:
            tag = entry[0]
            if tag == "v":
                ty_index = entry[2]
                if not isinstance(ty_index, int) or not 0 <= ty_index < len(types):
                    raise CertificateError(f"type reference {ty_index!r} out of range")
                terms.append(Var(str(entry[1]), types[ty_index]))
            elif tag == "s":
                terms.append(Sym(str(entry[1])))
            elif tag == "a":
                terms.append(
                    App(
                        terms[_back_ref(entry[1], index, "term")],
                        terms[_back_ref(entry[2], index, "term")],
                    )
                )
            else:
                raise CertificateError(f"unknown term tag {tag!r}")
        except (IndexError, TypeError) as error:
            raise CertificateError(f"broken term table entry {index}: {error}") from None
    return terms


def _decode_node(record: dict, terms: List[Term]) -> ProofNode:
    def term_at(value, what: str) -> Term:
        if not isinstance(value, int) or not 0 <= value < len(terms):
            raise CertificateError(f"{what} reference {value!r} out of range")
        return terms[value]

    from ..core.equations import Equation

    ident = record.get("id")
    if not isinstance(ident, int):
        raise CertificateError(f"proof vertex without an integer id: {record!r}")
    eq = record.get("eq")
    if not (isinstance(eq, (list, tuple)) and len(eq) == 2):
        raise CertificateError(f"vertex {ident}: equation must be a [lhs, rhs] pair")
    rule = record.get("rule")
    if rule is not None and rule not in ALL_RULES:
        raise CertificateError(f"vertex {ident}: unknown rule {rule!r}")
    premises = record.get("premises", [])
    if not isinstance(premises, (list, tuple)) or not all(isinstance(p, int) for p in premises):
        raise CertificateError(f"vertex {ident}: premises must be vertex ids")
    case_var = record.get("case_var")
    subst_record = record.get("subst")
    subst = None
    if subst_record is not None:
        if not isinstance(subst_record, dict):
            raise CertificateError(f"vertex {ident}: substitution must be an object")
        subst = Substitution(
            {str(name): term_at(value, f"vertex {ident} substitution") for name, value in subst_record.items()}
        )
    position = record.get("pos")
    if position is not None:
        if not isinstance(position, (list, tuple)) or not all(step in (0, 1) for step in position):
            raise CertificateError(f"vertex {ident}: position must be a list of 0/1 steps")
        position = tuple(position)
    side = record.get("side")
    if side is not None and side not in ("lhs", "rhs"):
        raise CertificateError(f"vertex {ident}: side must be 'lhs' or 'rhs', got {side!r}")
    constructors = record.get("cons", ())
    if not isinstance(constructors, (list, tuple)):
        raise CertificateError(f"vertex {ident}: case constructors must be a list")
    decoded_case_var = None
    if case_var is not None:
        decoded_case_var = term_at(case_var, f"vertex {ident} case variable")
        if not isinstance(decoded_case_var, Var):
            raise CertificateError(f"vertex {ident}: case variable is not a variable")
    return ProofNode(
        ident=ident,
        equation=Equation(term_at(eq[0], f"vertex {ident} lhs"), term_at(eq[1], f"vertex {ident} rhs")),
        rule=rule,
        premises=list(premises),
        case_var=decoded_case_var,
        case_constructors=tuple(str(c) for c in constructors),
        subst=subst,
        position=position,
        side=side,
        lemma_flipped=bool(record.get("flipped", False)),
    )


def decode(
    cert: Union[ProofCertificate, dict, str],
    bank: Optional[TermBank] = None,
) -> Preproof:
    """Rehydrate a certificate into a :class:`Preproof`.

    Terms are rebuilt through ``bank`` when given, otherwise through the
    current bank — so a checker can decode into a completely fresh
    :class:`TermBank` and never share a node with the process that produced
    the certificate.  Raises :class:`CertificateError` on malformed input.
    """
    cert = ProofCertificate.coerce(cert)
    if bank is not None:
        with use_bank(bank):
            return _decode(cert)
    return _decode(cert)


def _decode(cert: ProofCertificate) -> Preproof:
    # Untrusted input: anything that slips past the targeted validations must
    # still surface as CertificateError, never as a raw TypeError/KeyError.
    try:
        return _decode_validated(cert)
    except CertificateError:
        raise
    except Exception as error:  # noqa: BLE001 - decode() promises CertificateError
        raise CertificateError(f"malformed certificate: {error!r}") from error


def _decode_validated(cert: ProofCertificate) -> Preproof:
    types = _decode_types(cert.types)
    terms = _decode_terms(cert.terms, types)
    proof = Preproof()
    for record in cert.nodes:
        # restore_node is the single authority on duplicate vertex ids; its
        # ProofError surfaces as CertificateError via _decode's handler.
        proof.restore_node(_decode_node(record, terms))
    if cert.root is not None and cert.root not in proof:
        raise CertificateError(f"certificate root {cert.root} is not a vertex of the proof")
    proof.root = cert.root
    return proof
