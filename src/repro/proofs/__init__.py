"""Cyclic preproofs, inference rules, traces, soundness checking and rendering."""

from .inference import check_node, reachable_by_reduction
from .preproof import (
    ALL_RULES,
    RULE_CASE,
    RULE_CONG,
    RULE_FUNEXT,
    RULE_HYP,
    RULE_REDUCE,
    RULE_REFL,
    RULE_SUBST,
    Preproof,
    ProofNode,
)
from .certificate import (
    CERTIFICATE_FORMAT,
    CERTIFICATE_VERSION,
    ProofCertificate,
    decode,
    encode,
)
from .checker import CertificateChecker, CheckReport, check_certificate
from .render import proof_summary, render_certificate, render_dot, render_text
from .soundness import (
    SoundnessReport,
    check_global,
    check_local,
    check_proof,
    edge_size_change_graph,
    local_issues,
    proof_size_change_graphs,
)
from .traces import TraceCheckResult, TraceStep, check_trace, variable_traces

__all__ = [
    "Preproof", "ProofNode",
    "RULE_REFL", "RULE_REDUCE", "RULE_SUBST", "RULE_CASE", "RULE_CONG",
    "RULE_FUNEXT", "RULE_HYP", "ALL_RULES",
    "check_node", "reachable_by_reduction",
    "check_trace", "variable_traces", "TraceCheckResult", "TraceStep",
    "edge_size_change_graph", "proof_size_change_graphs",
    "local_issues", "check_local", "check_global", "check_proof", "SoundnessReport",
    "render_text", "render_dot", "proof_summary", "render_certificate",
    "ProofCertificate", "encode", "decode",
    "CERTIFICATE_FORMAT", "CERTIFICATE_VERSION",
    "CertificateChecker", "CheckReport", "check_certificate",
]
