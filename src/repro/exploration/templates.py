"""Candidate-lemma generation by term enumeration.

The paper leaves lemma discovery aside as an orthogonal concern but names
theory exploration (QuickSpec/HipSpec-style) as the state of the art and as
planned future work for CycleQ.  This module implements the generation half of
such a pipeline: enumerate small well-typed terms over a chosen set of function
symbols and variables, pair terms of equal type into candidate equations, and
discard candidates that are falsified by ground-instance testing.  The
companion module :mod:`repro.exploration.explorer` then tries to prove the
survivors with the cyclic prover and feeds them back as hypotheses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.equations import Equation
from ..core.exceptions import TypeCheckError
from ..core.signature import Signature
from ..core.terms import App, Sym, Term, Var, free_vars, term_size
from ..core.types import DataTy, FunTy, Type, TypeVar, arg_types, result_type
from ..program import Program, check_equation

__all__ = ["TemplateConfig", "enumerate_terms", "candidate_equations"]


@dataclass(frozen=True)
class TemplateConfig:
    """Parameters of the candidate-lemma enumeration."""

    max_term_size: int = 7
    """Maximum number of nodes in each side of a candidate equation."""

    max_variables_per_type: int = 2
    """How many distinct variables of each base type are available."""

    symbols: Tuple[str, ...] = ()
    """The defined symbols to build terms from (empty = all defined symbols)."""

    max_candidates: int = 400
    """Hard cap on the number of candidate equations returned."""

    testing_depth: int = 3
    """Depth bound for the ground-instance testing filter."""

    testing_limit: int = 200
    """Maximum number of ground instances tested per candidate."""


def _base_types_of_interest(signature: Signature, symbols: Sequence[str]) -> List[Type]:
    """The argument/result datatypes mentioned by the chosen symbols."""
    seen: Dict[Type, None] = {}
    for name in symbols:
        ty = signature.symbol_type(name)
        for part in arg_types(ty) + (result_type(ty),):
            if isinstance(part, DataTy):
                concrete = _concretise(signature, part)
                seen.setdefault(concrete, None)
    return list(seen)


def _concretise(signature: Signature, ty: Type) -> Type:
    """Instantiate type variables with the first nullary-constructor datatype."""
    if isinstance(ty, TypeVar):
        for name, decl in signature.datatypes.items():
            if not decl.params and any(not c.arg_types for c in decl.constructors):
                return DataTy(name)
        return ty
    if isinstance(ty, DataTy):
        return DataTy(ty.name, tuple(_concretise(signature, a) for a in ty.args))
    if isinstance(ty, FunTy):
        return FunTy(_concretise(signature, ty.arg), _concretise(signature, ty.res))
    return ty


def enumerate_terms(
    program: Program,
    config: Optional[TemplateConfig] = None,
) -> Dict[Type, List[Term]]:
    """Enumerate well-typed terms up to the configured size, grouped by type.

    The enumeration is bottom-up: variables and nullary constructors seed the
    table, and each round applies every chosen defined symbol to all argument
    combinations already available.  Terms are monomorphised (type variables
    instantiated at the first base datatype) so that equal types really mean
    comparable terms.
    """
    config = config or TemplateConfig()
    signature = program.signature
    symbols = config.symbols or tuple(
        name for name in program.rules.defined_symbols()
        if all(not isinstance(t, FunTy) for t in arg_types(signature.symbol_type(name)))
    )

    by_type: Dict[Type, List[Term]] = {}

    def add(ty: Type, term: Term) -> None:
        bucket = by_type.setdefault(ty, [])
        if term not in bucket:
            bucket.append(term)

    # Seed with variables of every base type of interest.
    for ty in _base_types_of_interest(signature, symbols):
        for index in range(config.max_variables_per_type):
            add(ty, Var(f"{_variable_stem(ty)}{index + 1}", ty))

    # Seed with nullary constructors of those types.
    for ty in list(by_type):
        if isinstance(ty, DataTy) and ty.name in signature.datatypes:
            for con_name, con_args in signature.instantiate_constructors(ty):
                if not con_args:
                    add(ty, Sym(con_name))

    # Bottom-up closure under application of the chosen defined symbols.
    changed = True
    rounds = 0
    while changed and rounds < config.max_term_size:
        changed = False
        rounds += 1
        for name in symbols:
            scheme = _concretise(signature, signature.symbol_type(name))
            argument_types = arg_types(scheme)
            result = result_type(scheme)
            if not argument_types:
                continue
            pools = [by_type.get(t, []) for t in argument_types]
            if any(not pool for pool in pools):
                continue
            for combo in itertools.product(*pools):
                term: Term = Sym(name)
                for argument in combo:
                    term = App(term, argument)
                if term_size(term) > config.max_term_size:
                    continue
                before = len(by_type.get(result, []))
                add(result, term)
                if len(by_type.get(result, [])) != before:
                    changed = True
    return by_type


def _variable_stem(ty: Type) -> str:
    if isinstance(ty, DataTy):
        if ty.name.lower().startswith("list"):
            return "xs"
        return ty.name[0].lower()
    return "v"


def candidate_equations(
    program: Program,
    config: Optional[TemplateConfig] = None,
) -> List[Equation]:
    """Candidate lemmas: pairs of enumerated terms of equal type that survive testing.

    Candidates are filtered by:

    * non-triviality (syntactically distinct sides, at least one defined symbol);
    * shared variables (a candidate whose sides have no variable in common is
      almost never a useful rewrite lemma);
    * ground-instance testing with :func:`repro.program.check_equation`.

    The result is sorted smallest-first, which is the order theory exploration
    tools prove and apply lemmas in.
    """
    config = config or TemplateConfig()
    by_type = enumerate_terms(program, config)
    candidates: List[Equation] = []
    for ty, terms in by_type.items():
        for left, right in itertools.combinations(terms, 2):
            if left == right:
                continue
            if not _mentions_defined(program.signature, left) and not _mentions_defined(
                program.signature, right
            ):
                continue
            left_vars = {v.name for v in free_vars(left)}
            right_vars = {v.name for v in free_vars(right)}
            if left_vars != right_vars or not left_vars:
                # Ground candidates are decided by reduction and useless as
                # lemmas; sides with different variables rarely rewrite usefully.
                continue
            equation = Equation(left, right)
            if equation in candidates:
                continue
            candidates.append(equation)
    candidates.sort(key=lambda eq: term_size(eq.lhs) + term_size(eq.rhs))
    # Ground-instance testing is the expensive part: do it last, lazily, capped.
    surviving: List[Equation] = []
    for equation in candidates:
        if len(surviving) >= config.max_candidates:
            break
        if check_equation(program, equation, depth=config.testing_depth, limit=config.testing_limit):
            surviving.append(equation)
    return surviving


def _mentions_defined(signature: Signature, term: Term) -> bool:
    from ..core.terms import subterms

    return any(
        isinstance(sub, Sym) and signature.is_defined(sub.name) for sub in subterms(term)
    )
