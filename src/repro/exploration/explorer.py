"""A small theory-exploration loop on top of the cyclic prover.

This is the "future work" integration sketched in the paper's conclusion:
instead of relying on a human for the hint lemmas of Section 6.2, generate
candidate lemmas by enumeration (:mod:`repro.exploration.templates`), prove
them with the cyclic prover in order of size — each proved lemma immediately
becomes a hypothesis available to later attempts — and finally attack the
target goal with the accumulated lemma library.

The loop is deliberately simple (no conjecture scheduling, no term ordering
tricks); its purpose is to demonstrate that the cyclic prover composes with
lemma discovery, and it is enough to recover some of the IsaPlanner problems
the bare prover cannot solve (e.g. those needing the commutativity of ``add``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.equations import Equation
from ..program import Goal, Program
from ..rewriting.reduction import Normalizer
from ..search.agenda import Agenda, BudgetExhausted, SearchBudget
from ..search.config import ProverConfig
from ..search.prover import Prover
from ..search.result import ProofResult
from ..semantics.falsify import FalsificationConfig, falsify_equation
from .templates import TemplateConfig, candidate_equations

__all__ = ["ExplorationConfig", "ExplorationResult", "TheoryExplorer"]


@dataclass(frozen=True)
class ExplorationConfig:
    """Parameters of the exploration loop."""

    templates: TemplateConfig = field(default_factory=TemplateConfig)
    """Candidate generation parameters."""

    lemma_timeout: float = 1.0
    """Per-candidate proof budget (seconds)."""

    goal_timeout: float = 5.0
    """Budget for the final goal attempt (seconds)."""

    max_lemmas: int = 25
    """Stop exploring once this many lemmas have been proved."""

    total_budget: float = 60.0
    """Wall-clock budget for the whole exploration phase (seconds)."""

    falsify_candidates: bool = True
    """Ground-test candidates on the compiled evaluator before proving them.

    A refuted candidate is certainly unprovable, so filtering it out saves the
    whole per-lemma proof budget — the QuickSpec/HipSpec regime, where theory
    exploration lives or dies on fast ground-instance testing."""

    falsify_depth: int = 3
    """Exhaustive depth of the candidate filter (kept small: it runs per candidate)."""

    falsify_instances: int = 64
    """Instance budget (exhaustive + random combined) of the candidate filter."""


@dataclass
class ExplorationResult:
    """The outcome of proving a goal with theory exploration."""

    proved: bool
    goal: Equation
    result: Optional[ProofResult] = None
    lemmas: Tuple[Equation, ...] = ()
    candidates_considered: int = 0
    candidates_deduplicated: int = 0
    candidates_refuted: int = 0
    """Candidates dropped because ground testing found a counterexample."""
    lemmas_proved: int = 0
    exploration_seconds: float = 0.0
    normalizer_stats: Dict[str, int] = field(default_factory=dict)
    max_agenda_size: int = 0
    """High-water mark of the candidate agenda during exploration."""

    def __bool__(self) -> bool:
        return self.proved


class TheoryExplorer:
    """Prove goals with the cyclic prover plus enumerated, proved lemmas."""

    def __init__(
        self,
        program: Program,
        config: Optional[ExplorationConfig] = None,
        prover_config: Optional[ProverConfig] = None,
    ):
        self.program = program
        self.config = config or ExplorationConfig()
        self.prover_config = prover_config or ProverConfig()
        self._library: Optional[List[Equation]] = None
        self._candidates_considered = 0
        self._candidates_deduplicated = 0
        self._candidates_refuted = 0
        self._max_agenda_size = 0
        self._normalizer = Normalizer(program.rules)
        self._falsify_config = FalsificationConfig(
            depth=self.config.falsify_depth,
            exhaustive_limit=self.config.falsify_instances,
            random_samples=max(0, self.config.falsify_instances // 2),
            random_depth=self.config.falsify_depth + 2,
        )

    # -- lemma library ---------------------------------------------------------

    def explore(self) -> List[Equation]:
        """Build (and cache) the lemma library for this program.

        Candidates are normalised through a shared (interning-backed)
        :class:`~repro.rewriting.reduction.Normalizer` first: a candidate whose
        normal form is trivial carries no information, and two candidates with
        the same normal form are the same lemma, so only the first is attempted.
        This spends the per-lemma proof budget on genuinely distinct conjectures.
        """
        if self._library is not None:
            return list(self._library)
        lemma_prover = Prover(
            self.program, self.prover_config.with_(timeout=self.config.lemma_timeout)
        )
        library: List[Equation] = []
        # The candidate frontier lives on the shared agenda core, in
        # enumeration order (smallest templates first, as generated), and the
        # whole phase charges one SearchBudget — the same deadline object the
        # per-candidate prover aborts against, so a lemma attempt never
        # overruns the phase budget by more than one budget-check interval.
        budget = SearchBudget(timeout=self.config.total_budget)
        agenda = Agenda("fifo")
        agenda.extend(candidate_equations(self.program, self.config.templates))
        self._candidates_considered = len(agenda)
        seen_normal_forms: set = set()
        while agenda:
            if len(library) >= self.config.max_lemmas:
                break
            try:
                budget.check()
            except BudgetExhausted:
                break
            candidate = agenda.pop()
            normalized = candidate.map_sides(self._normalizer)
            if normalized.is_trivial() or normalized in seen_normal_forms:
                self._candidates_deduplicated += 1
                continue
            seen_normal_forms.add(normalized)
            # Refuted candidates are unprovable by construction: testing a few
            # dozen ground instances on the compiled evaluator costs microseconds
            # against the ~1s proof budget each false candidate would waste.
            if self.config.falsify_candidates and falsify_equation(
                self.program, candidate, config=self._falsify_config
            ):
                self._candidates_refuted += 1
                continue
            # Lemmas proved earlier are available as hypotheses for later ones,
            # exactly like the incremental regime of HipSpec-style exploration.
            outcome = lemma_prover.prove(candidate, hypotheses=library, budget=budget)
            if outcome.proved:
                library.append(candidate)
        self._max_agenda_size = agenda.max_size
        self._library = library
        return list(library)

    # -- goal proving --------------------------------------------------------------

    def prove(self, equation: Equation, goal_name: str = "") -> ExplorationResult:
        """Attempt ``equation``: first alone, then with the explored lemma library."""
        started = time.perf_counter()
        direct_prover = Prover(
            self.program, self.prover_config.with_(timeout=self.config.goal_timeout)
        )
        direct = direct_prover.prove(equation, goal_name=goal_name)
        if direct.proved:
            return ExplorationResult(
                proved=True,
                goal=equation,
                result=direct,
                exploration_seconds=time.perf_counter() - started,
            )
        library = self.explore()
        assisted = direct_prover.prove(equation, goal_name=goal_name, hypotheses=library)
        return ExplorationResult(
            proved=assisted.proved,
            goal=equation,
            result=assisted,
            lemmas=tuple(library),
            candidates_considered=self._candidates_considered,
            candidates_deduplicated=self._candidates_deduplicated,
            candidates_refuted=self._candidates_refuted,
            lemmas_proved=len(library),
            exploration_seconds=time.perf_counter() - started,
            normalizer_stats=self._normalizer.cache_stats(),
            max_agenda_size=self._max_agenda_size,
        )

    def prove_goal(self, goal: Goal) -> ExplorationResult:
        """Attempt a named goal (conditional goals are out of scope, as for the prover)."""
        if goal.is_conditional:
            return ExplorationResult(proved=False, goal=goal.equation)
        return self.prove(goal.equation, goal_name=goal.name)
