"""Theory exploration (lemma discovery) on top of the cyclic prover — the paper's future work."""

from .explorer import ExplorationConfig, ExplorationResult, TheoryExplorer
from .templates import TemplateConfig, candidate_equations, enumerate_terms

__all__ = [
    "TheoryExplorer", "ExplorationConfig", "ExplorationResult",
    "TemplateConfig", "candidate_equations", "enumerate_terms",
]
