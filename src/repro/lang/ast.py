"""Abstract syntax of the surface language (before elaboration)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "SType", "STyCon", "STyVar", "STyFun",
    "SExpr", "SVar", "SCon", "SApp", "SNum",
    "SDecl", "SData", "SSig", "SClause", "SProperty", "SModule",
]


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class SType:
    """Base class of surface types."""


@dataclass(frozen=True)
class STyCon(SType):
    """A type constructor application, e.g. ``List a`` or ``Nat``."""

    name: str
    args: Tuple["SType", ...] = ()


@dataclass(frozen=True)
class STyVar(SType):
    """A type variable, e.g. ``a``."""

    name: str


@dataclass(frozen=True)
class STyFun(SType):
    """A function type ``arg -> res``."""

    arg: SType
    res: SType


# ---------------------------------------------------------------------------
# Expressions and patterns (shared shape)
# ---------------------------------------------------------------------------


class SExpr:
    """Base class of surface expressions and patterns."""


@dataclass(frozen=True)
class SVar(SExpr):
    """A lowercase identifier: a variable or a reference to a defined function."""

    name: str


@dataclass(frozen=True)
class SCon(SExpr):
    """An uppercase identifier: a constructor."""

    name: str


@dataclass(frozen=True)
class SApp(SExpr):
    """An application."""

    fun: SExpr
    arg: SExpr


@dataclass(frozen=True)
class SNum(SExpr):
    """A numeric literal, sugar for a Peano numeral ``S (S (... Z))``."""

    value: int


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class SDecl:
    """Base class of top-level declarations."""


@dataclass
class SData(SDecl):
    """``data T a b = K1 t ... | K2 ...``"""

    name: str
    params: Tuple[str, ...]
    constructors: Tuple[Tuple[str, Tuple[SType, ...]], ...]
    line: int = 0


@dataclass
class SSig(SDecl):
    """``f :: t``"""

    name: str
    type: SType
    line: int = 0


@dataclass
class SClause(SDecl):
    """``f p1 ... pn = rhs``"""

    name: str
    patterns: Tuple[SExpr, ...]
    body: SExpr
    line: int = 0


@dataclass
class SProperty(SDecl):
    """``prop x y = [cond === cond ==>]* lhs === rhs``"""

    name: str
    binders: Tuple[str, ...]
    conditions: Tuple[Tuple[SExpr, SExpr], ...]
    lhs: SExpr
    rhs: SExpr
    line: int = 0


@dataclass
class SModule:
    """A parsed module: the list of declarations in source order."""

    declarations: List[SDecl] = field(default_factory=list)

    def data_declarations(self) -> List[SData]:
        return [d for d in self.declarations if isinstance(d, SData)]

    def signatures(self) -> List[SSig]:
        return [d for d in self.declarations if isinstance(d, SSig)]

    def clauses(self) -> List[SClause]:
        return [d for d in self.declarations if isinstance(d, SClause)]

    def properties(self) -> List[SProperty]:
        return [d for d in self.declarations if isinstance(d, SProperty)]
