"""Top-level entry points: load programs and parse terms/equations.

These are the functions user code typically calls:

* :func:`load_program` — parse and elaborate a whole module from a string;
* :func:`load_program_file` — the same, from a file path;
* :func:`parse_term_in_signature` / :func:`parse_equation_in_signature` — parse
  a single term or equation against an existing program's signature (used by
  ``Program.parse_term`` and heavily by the test suite and examples).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from ..core.equations import Equation
from ..core.exceptions import ElaborationError
from ..core.signature import Signature
from ..core.terms import Term
from ..core.types import Type
from ..program import Program
from .ast import SExpr
from .elaborate import _expr_to_term, elaborate_module
from .infer import TypeInference, prettify_type_vars
from .parser import parse_expression, parse_module

__all__ = [
    "load_program",
    "load_program_file",
    "parse_term_in_signature",
    "parse_equation_in_signature",
]


def load_program(source: str, name: str = "module", check_completeness: bool = True) -> Program:
    """Parse and elaborate a surface-language module given as a string."""
    module = parse_module(source)
    program = elaborate_module(module, name=name, check_completeness=check_completeness)
    program.source = source
    return program


def load_program_file(path: Union[str, Path], check_completeness: bool = True) -> Program:
    """Parse and elaborate a surface-language module from a file."""
    path = Path(path)
    return load_program(path.read_text(), name=path.stem, check_completeness=check_completeness)


def _typed_environment(
    expressions, signature: Signature, env: Mapping[str, Type]
) -> Dict[str, Type]:
    """Infer types for the free variables of the given expressions.

    Variables already present in ``env`` keep their declared types; the types
    of the remaining variables are inferred from use.
    """
    inference = TypeInference(signature)
    working: Dict[str, Type] = dict(env)

    def collect(expr: SExpr) -> None:
        from .ast import SApp, SVar

        if isinstance(expr, SVar):
            if expr.name not in working and not signature.is_declared(expr.name):
                working[expr.name] = inference.fresh("v")
        elif isinstance(expr, SApp):
            collect(expr.fun)
            collect(expr.arg)

    for expression in expressions:
        collect(expression)
    types = [inference.infer_expr(expression, working) for expression in expressions]
    if len(types) == 2:
        inference.unify(types[0], types[1], context="equation")
    mapping: Dict[str, str] = {}
    return {
        name: prettify_type_vars(inference.resolve(ty), mapping) for name, ty in working.items()
    }, inference


def parse_term_in_signature(
    source: str, signature: Signature, env: Optional[Mapping[str, Type]] = None
) -> Term:
    """Parse a single term against ``signature``; variable types from ``env`` or inferred."""
    expression = parse_expression(source)
    typed_env, inference = _typed_environment([expression], signature, env or {})
    return _expr_to_term(expression, typed_env, signature, inference)


def parse_equation_in_signature(
    source: str, signature: Signature, env: Optional[Mapping[str, Type]] = None
) -> Equation:
    """Parse ``lhs === rhs`` (or ``≈``/``≡``/``=``) against ``signature``."""
    for separator in ("===", "≈", "≡"):
        if separator in source:
            left_text, right_text = source.split(separator, 1)
            break
    else:
        if "=" in source:
            left_text, right_text = source.split("=", 1)
        else:
            raise ElaborationError(f"no equation separator found in {source!r}")
    left_expr = parse_expression(left_text.strip())
    right_expr = parse_expression(right_text.strip())
    typed_env, inference = _typed_environment([left_expr, right_expr], signature, env or {})
    return Equation(
        _expr_to_term(left_expr, typed_env, signature, inference),
        _expr_to_term(right_expr, typed_env, signature, inference),
    )
