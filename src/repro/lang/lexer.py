"""Lexer for the small functional surface language.

CycleQ is a GHC plugin and consumes a "small subset of Haskell": algebraic
datatype declarations, top-level recursive function definitions and equations
to be proved.  The reproduction provides an equivalent stand-alone surface
language with the same flavour::

    data Nat = Z | S Nat
    data List a = Nil | Cons a (List a)

    add :: Nat -> Nat -> Nat
    add Z y = y
    add (S x) y = S (add x y)

    prop_add_comm :: Equation
    prop_add_comm x y = add x y === add y x

The lexer splits a source file into logical lines (a physical line starting
with whitespace continues the previous declaration) and tokenises each logical
line.  Tokens carry their line/column for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..core.exceptions import ParseError

__all__ = ["Token", "tokenize", "logical_lines"]

# Token kinds
LOWER = "LOWER"
UPPER = "UPPER"
EQUALS = "EQUALS"          # =
PIPE = "PIPE"              # |
LPAREN = "LPAREN"
RPAREN = "RPAREN"
DOUBLE_COLON = "DCOLON"    # ::
ARROW = "ARROW"            # ->
EQUIV = "EQUIV"            # === or ≈ or ≡
IMPLIES = "IMPLIES"        # ==>
COMMA = "COMMA"
KEYWORD_DATA = "DATA"
END = "END"


@dataclass(frozen=True)
class Token:
    """A single token with its source location."""

    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.text!r}"


_SYMBOLS: Tuple[Tuple[str, str], ...] = (
    ("==>", IMPLIES),
    ("===", EQUIV),
    ("≡", EQUIV),
    ("≈", EQUIV),
    ("::", DOUBLE_COLON),
    ("->", ARROW),
    ("=", EQUALS),
    ("|", PIPE),
    ("(", LPAREN),
    (")", RPAREN),
    (",", COMMA),
)


def _strip_comment(line: str) -> str:
    index = line.find("--")
    if index >= 0:
        return line[:index]
    return line


def logical_lines(source: str) -> List[Tuple[int, str]]:
    """Split source into logical lines: indented lines continue the previous one.

    Returns ``(first_physical_line_number, text)`` pairs; comments and blank
    lines are dropped.
    """
    result: List[Tuple[int, str]] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line.strip():
            continue
        if line[0].isspace() and result:
            first, text = result[-1]
            result[-1] = (first, text + " " + line.strip())
        else:
            result.append((number, line.rstrip()))
    return result


def tokenize(text: str, line: int = 1) -> List[Token]:
    """Tokenise one logical line."""
    tokens: List[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        matched = False
        for symbol, kind in _SYMBOLS:
            if text.startswith(symbol, index):
                tokens.append(Token(kind, symbol, line, index + 1))
                index += len(symbol)
                matched = True
                break
        if matched:
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] in "_'"):
                index += 1
            word = text[start:index]
            if word == "data":
                tokens.append(Token(KEYWORD_DATA, word, line, start + 1))
            elif word[0].isupper():
                tokens.append(Token(UPPER, word, line, start + 1))
            else:
                tokens.append(Token(LOWER, word, line, start + 1))
            continue
        if char.isdigit():
            start = index
            while index < length and text[index].isdigit():
                index += 1
            # Numeric literals are sugar for Peano numerals, handled by the parser.
            tokens.append(Token(UPPER, text[start:index], line, start + 1))
            continue
        raise ParseError(f"unexpected character {char!r}", line, index + 1)
    tokens.append(Token(END, "", line, length + 1))
    return tokens
