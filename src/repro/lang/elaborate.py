"""Elaboration: surface modules to core programs.

Elaboration turns a parsed :class:`repro.lang.ast.SModule` into a
:class:`repro.program.Program`:

* datatype declarations populate the :class:`repro.core.signature.Signature`;
* function clauses become rewrite rules (one per clause) whose variables carry
  the types discovered by :class:`repro.lang.infer.TypeInference`;
* properties become named :class:`repro.program.Goal` objects, with equational
  hypotheses preserved so that conditional goals can be classified as out of
  scope, mirroring the paper's evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..core.equations import Equation
from ..core.exceptions import ElaborationError
from ..core.signature import Signature
from ..core.terms import App, Sym, Term, Var, apply_term
from ..core.types import DataTy, FunTy, Type, TypeVar, arg_types, fun_ty, result_type
from ..program import Goal, Program
from ..rewriting.rules import RewriteRule
from ..rewriting.trs import RewriteSystem
from .ast import SApp, SClause, SCon, SData, SExpr, SModule, SNum, SProperty, SSig, SVar
from .infer import TypeInference, prettify_type_vars, surface_type_to_core

__all__ = ["elaborate_module", "ElaboratedClause"]

_PROPERTY_TYPE_NAMES = {"Equation", "Prop", "Property"}


class ElaboratedClause:
    """A clause whose constraints have been collected but whose terms are not yet built."""

    def __init__(self, name: str, patterns, body, bindings: Dict[str, Type], line: int):
        self.name = name
        self.patterns = patterns
        self.body = body
        self.bindings = bindings
        self.line = line


def elaborate_module(module: SModule, name: str = "module", check_completeness: bool = True) -> Program:
    """Elaborate a parsed module into a :class:`Program`."""
    signature = Signature()
    datatype_arities: Dict[str, int] = {}

    # -- datatypes ----------------------------------------------------------------
    for data in module.data_declarations():
        datatype_arities[data.name] = len(data.params)
    for data in module.data_declarations():
        constructors = []
        for con_name, con_args in data.constructors:
            core_args = tuple(surface_type_to_core(a, datatype_arities) for a in con_args)
            constructors.append((con_name, core_args))
        signature.datatype(data.name, data.params, constructors)

    # -- signatures ------------------------------------------------------------------
    property_names = set()
    declared_types: Dict[str, Type] = {}
    for sig in module.signatures():
        if _is_property_signature(sig):
            property_names.add(sig.name)
            continue
        declared_types[sig.name] = surface_type_to_core(sig.type, datatype_arities)

    clause_groups: Dict[str, List[SClause]] = {}
    for clause in module.clauses():
        clause_groups.setdefault(clause.name, []).append(clause)

    for fname, ty in declared_types.items():
        signature.declare_function(fname, ty)

    inference = TypeInference(signature)

    # Placeholder types for functions without a signature (supports mutual recursion).
    for fname, clauses in clause_groups.items():
        if fname in declared_types:
            continue
        arity = max(len(c.patterns) for c in clauses)
        placeholder = fun_ty([inference.fresh("a") for _ in range(arity)], inference.fresh("r"))
        inference.placeholders[fname] = placeholder

    # -- clause constraint collection ------------------------------------------------------
    elaborated: List[ElaboratedClause] = []
    for fname, clauses in clause_groups.items():
        for clause in clauses:
            function_type = (
                signature.symbol_type(fname)
                if fname in declared_types
                else inference.placeholders[fname]
            )
            expected_args = arg_types(function_type)
            if len(clause.patterns) > len(expected_args):
                raise ElaborationError(
                    f"{fname} (line {clause.line}): clause has more patterns than its type has arguments"
                )
            bindings: Dict[str, Type] = {}
            for pattern, expected in zip(clause.patterns, expected_args):
                inference.infer_pattern(pattern, inference.resolve(expected), bindings)
            remaining = function_type
            for _ in range(len(clause.patterns)):
                remaining = remaining.res  # type: ignore[attr-defined]
            body_type = inference.infer_expr(clause.body, bindings)
            inference.unify(body_type, remaining, context=f"{fname} (line {clause.line})")
            elaborated.append(ElaboratedClause(fname, clause.patterns, clause.body, bindings, clause.line))

    # -- declare inferred function types ------------------------------------------------------
    for fname, placeholder in inference.placeholders.items():
        resolved = inference.resolve(placeholder)
        pretty = prettify_type_vars(resolved, {})
        signature.declare_function(fname, pretty)

    # -- build rewrite rules --------------------------------------------------------------------
    rules = RewriteSystem(signature)
    for clause in elaborated:
        mapping: Dict[str, str] = {}
        typed_bindings = {
            var_name: prettify_type_vars(inference.resolve(var_type), mapping)
            for var_name, var_type in clause.bindings.items()
        }
        lhs = apply_term(
            Sym(clause.name),
            *[_expr_to_term(p, typed_bindings, signature, inference) for p in clause.patterns],
        )
        rhs = _expr_to_term(clause.body, typed_bindings, signature, inference)
        rules.add_rule(RewriteRule(lhs, rhs))

    if check_completeness:
        report = rules.completeness_report()
        if not report:
            raise ElaborationError(
                "the program's pattern matches are not exhaustive: " + "; ".join(report.missing)
            )

    program = Program(signature, rules, name=name)

    # -- properties ----------------------------------------------------------------------------------
    for prop in module.properties():
        goal = _elaborate_property(prop, signature, inference)
        program.add_goal(goal)

    return program


def _is_property_signature(sig: SSig) -> bool:
    ty = sig.type
    from .ast import STyCon

    return isinstance(ty, STyCon) and ty.name in _PROPERTY_TYPE_NAMES and not ty.args


def _elaborate_property(prop: SProperty, signature: Signature, shared: TypeInference) -> Goal:
    inference = TypeInference(signature)
    env: Dict[str, Type] = {b: inference.fresh("b") for b in prop.binders}

    def infer_pair(left: SExpr, right: SExpr) -> None:
        lt = inference.infer_expr(left, env)
        rt = inference.infer_expr(right, env)
        inference.unify(lt, rt, context=f"property {prop.name}")

    for cond_lhs, cond_rhs in prop.conditions:
        infer_pair(cond_lhs, cond_rhs)
    infer_pair(prop.lhs, prop.rhs)

    mapping: Dict[str, str] = {}
    typed_env = {
        name: prettify_type_vars(inference.resolve(ty), mapping) for name, ty in env.items()
    }

    def to_term(expr: SExpr) -> Term:
        return _expr_to_term(expr, typed_env, signature, inference)

    conditions = tuple(Equation(to_term(l), to_term(r)) for l, r in prop.conditions)
    equation = Equation(to_term(prop.lhs), to_term(prop.rhs))
    return Goal(name=prop.name, equation=equation, conditions=conditions)


def _expr_to_term(
    expr: SExpr,
    env: Mapping[str, Type],
    signature: Signature,
    inference: TypeInference,
) -> Term:
    """Convert a surface expression/pattern to a core term under ``env``."""
    if isinstance(expr, SVar):
        if expr.name in env:
            return Var(expr.name, env[expr.name])
        if signature.is_declared(expr.name):
            return Sym(expr.name)
        raise ElaborationError(f"unbound variable {expr.name}")
    if isinstance(expr, SCon):
        if not signature.is_constructor(expr.name):
            raise ElaborationError(f"unknown constructor {expr.name}")
        return Sym(expr.name)
    if isinstance(expr, SNum):
        return _peano(expr.value, signature)
    if isinstance(expr, SApp):
        return App(
            _expr_to_term(expr.fun, env, signature, inference),
            _expr_to_term(expr.arg, env, signature, inference),
        )
    raise ElaborationError(f"unsupported expression {expr!r}")


def _peano(value: int, signature: Signature) -> Term:
    if not signature.is_constructor("Z") or not signature.is_constructor("S"):
        raise ElaborationError("numeric literals require a Nat datatype with constructors Z and S")
    term: Term = Sym("Z")
    for _ in range(value):
        term = App(Sym("S"), term)
    return term
