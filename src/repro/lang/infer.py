"""Hindley–Milner style type inference for the surface language.

The elaborator needs types for three things:

* the pattern variables of every function clause (so that the corresponding
  rewrite-rule variables carry datatype information for the (Case) rule);
* defined functions lacking an explicit type signature (handled by solving the
  usual constraint system over all clauses at once, which also covers mutual
  recursion such as ``mapT``/``mapE``);
* the binders of properties (inferred from their use in the equation).

The algorithm is the standard one: fresh unification variables, constraint
collection by structural recursion, a single global substitution solved with
:func:`repro.core.types.unify_types`, and generalisation of leftover variables
to pretty names (``a``, ``b``, ...).
"""

from __future__ import annotations

import string
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.exceptions import ElaborationError, TypeCheckError, UnificationError
from ..core.signature import Signature
from ..core.types import (
    DataTy,
    FunTy,
    Type,
    TypeSubst,
    TypeVar,
    apply_type_subst,
    free_type_vars,
    instantiate,
    resolve,
    unify_types,
)
from .ast import SApp, SCon, SExpr, SNum, STyCon, STyFun, STyVar, SType, SVar

__all__ = ["TypeInference", "surface_type_to_core", "prettify_type_vars"]


def surface_type_to_core(ty: SType, datatypes: Mapping[str, int]) -> Type:
    """Convert a surface type to a core type.

    ``datatypes`` maps declared datatype names to their parameter count and is
    used to validate arities; unknown uppercase names are an error.
    """
    if isinstance(ty, STyVar):
        return TypeVar(ty.name)
    if isinstance(ty, STyFun):
        return FunTy(
            surface_type_to_core(ty.arg, datatypes),
            surface_type_to_core(ty.res, datatypes),
        )
    if isinstance(ty, STyCon):
        if ty.name not in datatypes:
            raise ElaborationError(f"unknown type constructor {ty.name}")
        expected = datatypes[ty.name]
        if len(ty.args) != expected:
            raise ElaborationError(
                f"type constructor {ty.name} expects {expected} argument(s), got {len(ty.args)}"
            )
        return DataTy(ty.name, tuple(surface_type_to_core(a, datatypes) for a in ty.args))
    raise ElaborationError(f"unsupported surface type {ty!r}")


def prettify_type_vars(ty: Type, taken: Optional[Dict[str, str]] = None) -> Type:
    """Rename machine-generated type variables to ``a``, ``b``, ``c`` ...

    ``taken`` accumulates the renaming so that several types of the same
    declaration share names consistently.
    """
    mapping = taken if taken is not None else {}
    alphabet = list(string.ascii_lowercase)

    def next_name() -> str:
        used = set(mapping.values())
        for letter in alphabet:
            if letter not in used:
                return letter
        index = 0
        while f"t{index}" in used:
            index += 1
        return f"t{index}"

    subst: TypeSubst = {}
    for name in free_type_vars(ty):
        if name.startswith("$"):
            if name not in mapping:
                mapping[name] = next_name()
            subst[name] = TypeVar(mapping[name])
    return apply_type_subst(subst, ty)


class TypeInference:
    """A constraint-solving context shared across the clauses of a module."""

    def __init__(self, signature: Signature):
        self.signature = signature
        self.subst: TypeSubst = {}
        self._counter = 0
        # Placeholder (monomorphic) types for functions still being inferred.
        self.placeholders: Dict[str, Type] = {}

    # -- plumbing ----------------------------------------------------------------

    def fresh(self, hint: str = "t") -> TypeVar:
        self._counter += 1
        return TypeVar(f"${hint}{self._counter}")

    def unify(self, a: Type, b: Type, context: str = "") -> None:
        try:
            unify_types(a, b, self.subst)
        except UnificationError as exc:
            raise TypeCheckError(f"{context}: cannot unify {a} with {b}: {exc}") from exc

    def resolve(self, ty: Type) -> Type:
        return resolve(ty, self.subst)

    def symbol_use_type(self, name: str) -> Type:
        """The type of a symbol occurrence inside a body or property.

        Declared (constructor or signed) symbols are instantiated freshly; a
        function currently being inferred uses its shared placeholder type
        (monomorphic recursion).
        """
        if name in self.placeholders:
            return self.placeholders[name]
        return instantiate(self.signature.symbol_type(name))

    # -- patterns -------------------------------------------------------------------

    def infer_pattern(self, pattern: SExpr, expected: Type, bindings: Dict[str, Type]) -> None:
        """Type a pattern against ``expected``, extending ``bindings`` for its variables."""
        if isinstance(pattern, SVar):
            if pattern.name in bindings:
                raise ElaborationError(f"pattern variable {pattern.name} bound twice")
            bindings[pattern.name] = expected
            return
        if isinstance(pattern, SNum):
            self.unify(expected, DataTy("Nat"), context="numeric pattern")
            return
        head, args = _spine(pattern)
        if not isinstance(head, SCon):
            raise ElaborationError(f"invalid pattern {pattern!r}")
        if not self.signature.is_constructor(head.name):
            raise ElaborationError(f"unknown constructor {head.name} in pattern")
        con_type = instantiate(self.signature.symbol_type(head.name))
        arg_types, result = _split_arrows(con_type, len(args))
        if len(arg_types) != len(args):
            raise ElaborationError(
                f"constructor {head.name} applied to {len(args)} argument(s) in a pattern, "
                f"expected {self.signature.arity(head.name)}"
            )
        self.unify(result, expected, context=f"pattern {head.name}")
        for sub_pattern, sub_type in zip(args, arg_types):
            self.infer_pattern(sub_pattern, self.resolve(sub_type), bindings)

    # -- expressions ---------------------------------------------------------------------

    def infer_expr(self, expr: SExpr, env: Mapping[str, Type]) -> Type:
        """Infer the type of an expression under ``env`` (term variables)."""
        if isinstance(expr, SVar):
            if expr.name in env:
                return env[expr.name]
            if self.signature.is_declared(expr.name) or expr.name in self.placeholders:
                return self.symbol_use_type(expr.name)
            raise ElaborationError(f"unbound variable or unknown function {expr.name}")
        if isinstance(expr, SCon):
            if not self.signature.is_constructor(expr.name):
                raise ElaborationError(f"unknown constructor {expr.name}")
            return self.symbol_use_type(expr.name)
        if isinstance(expr, SNum):
            return DataTy("Nat")
        if isinstance(expr, SApp):
            fun_type = self.infer_expr(expr.fun, env)
            arg_type = self.infer_expr(expr.arg, env)
            result = self.fresh("r")
            self.unify(fun_type, FunTy(arg_type, result), context=f"application {expr!r}")
            return result
        raise ElaborationError(f"unsupported expression {expr!r}")


def _spine(expr: SExpr) -> Tuple[SExpr, List[SExpr]]:
    args: List[SExpr] = []
    while isinstance(expr, SApp):
        args.append(expr.arg)
        expr = expr.fun
    args.reverse()
    return expr, args


def _split_arrows(ty: Type, count: int) -> Tuple[List[Type], Type]:
    args: List[Type] = []
    current = ty
    for _ in range(count):
        if not isinstance(current, FunTy):
            break
        args.append(current.arg)
        current = current.res
    return args, current
