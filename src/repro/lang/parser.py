"""Recursive-descent parser for the surface language.

Each logical line (see :func:`repro.lang.lexer.logical_lines`) is one
declaration; the parser recognises four forms:

* ``data T a = K1 ... | K2 ...`` — datatype declarations;
* ``f :: type`` — type signatures (a signature of type ``Equation`` or
  ``Prop`` merely marks the following definition as a property);
* ``f p1 ... pn = body`` — a function clause, when the body contains no
  top-level ``===``/``≈``/``==>``;
* ``prop x y = [c1 === c2 ==>]* lhs === rhs`` — a property (conjecture),
  possibly with equational hypotheses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.exceptions import ParseError
from .ast import (
    SApp,
    SClause,
    SCon,
    SData,
    SExpr,
    SModule,
    SNum,
    SProperty,
    SSig,
    SType,
    STyCon,
    STyFun,
    STyVar,
    SVar,
)
from .lexer import (
    ARROW,
    COMMA,
    DOUBLE_COLON,
    END,
    EQUALS,
    EQUIV,
    IMPLIES,
    KEYWORD_DATA,
    LOWER,
    LPAREN,
    PIPE,
    RPAREN,
    UPPER,
    Token,
    logical_lines,
    tokenize,
)

__all__ = ["parse_module", "parse_expression", "parse_type"]


class _TokenStream:
    """A cursor over the token list of one logical line."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.index = 0

    def peek(self) -> Token:
        return self.tokens[self.index]

    def next(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != END:
            self.index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.text!r}", token.line, token.column)
        return self.next()

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    def at_end(self) -> bool:
        return self.peek().kind == END

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.line, token.column)


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def _parse_type(stream: _TokenStream) -> SType:
    left = _parse_btype(stream)
    if stream.at(ARROW):
        stream.next()
        right = _parse_type(stream)
        return STyFun(left, right)
    return left


def _parse_btype(stream: _TokenStream) -> SType:
    atoms: List[SType] = [_parse_atype(stream)]
    while stream.peek().kind in (UPPER, LOWER, LPAREN):
        atoms.append(_parse_atype(stream))
    if len(atoms) == 1:
        return atoms[0]
    head = atoms[0]
    if isinstance(head, STyCon) and not head.args:
        return STyCon(head.name, tuple(atoms[1:]))
    raise stream.error("only a type constructor may be applied to type arguments")


def _parse_atype(stream: _TokenStream) -> SType:
    token = stream.peek()
    if token.kind == UPPER:
        stream.next()
        return STyCon(token.text)
    if token.kind == LOWER:
        stream.next()
        return STyVar(token.text)
    if token.kind == LPAREN:
        stream.next()
        inner = _parse_type(stream)
        stream.expect(RPAREN)
        return inner
    raise stream.error(f"expected a type, found {token.text!r}")


def parse_type(source: str) -> SType:
    """Parse a type written on its own (used by tests and the REPL helpers)."""
    stream = _TokenStream(tokenize(source))
    ty = _parse_type(stream)
    if not stream.at_end():
        raise stream.error("trailing input after type")
    return ty


# ---------------------------------------------------------------------------
# Expressions and patterns
# ---------------------------------------------------------------------------


def _parse_expression(stream: _TokenStream) -> SExpr:
    atoms: List[SExpr] = [_parse_atom(stream)]
    while stream.peek().kind in (UPPER, LOWER, LPAREN):
        atoms.append(_parse_atom(stream))
    expr = atoms[0]
    for atom in atoms[1:]:
        expr = SApp(expr, atom)
    return expr


def _parse_atom(stream: _TokenStream) -> SExpr:
    token = stream.peek()
    if token.kind == UPPER:
        stream.next()
        if token.text.isdigit():
            return SNum(int(token.text))
        return SCon(token.text)
    if token.kind == LOWER:
        stream.next()
        return SVar(token.text)
    if token.kind == LPAREN:
        stream.next()
        inner = _parse_expression(stream)
        stream.expect(RPAREN)
        return inner
    raise stream.error(f"expected an expression, found {token.text!r}")


def parse_expression(source: str) -> SExpr:
    """Parse a stand-alone expression (used by ``Program.parse_term``)."""
    stream = _TokenStream(tokenize(source))
    expr = _parse_expression(stream)
    if not stream.at_end():
        raise stream.error("trailing input after expression")
    return expr


def _parse_pattern(stream: _TokenStream) -> SExpr:
    token = stream.peek()
    if token.kind == LOWER:
        stream.next()
        return SVar(token.text)
    if token.kind == UPPER:
        stream.next()
        if token.text.isdigit():
            return SNum(int(token.text))
        return SCon(token.text)
    if token.kind == LPAREN:
        stream.next()
        inner = _parse_expression(stream)
        stream.expect(RPAREN)
        return inner
    raise stream.error(f"expected a pattern, found {token.text!r}")


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


def _parse_data(stream: _TokenStream, line: int) -> SData:
    stream.expect(KEYWORD_DATA)
    name = stream.expect(UPPER).text
    params: List[str] = []
    while stream.at(LOWER):
        params.append(stream.next().text)
    stream.expect(EQUALS)
    constructors: List[Tuple[str, Tuple[SType, ...]]] = []
    while True:
        con_name = stream.expect(UPPER).text
        arg_types: List[SType] = []
        while stream.peek().kind in (UPPER, LOWER, LPAREN):
            arg_types.append(_parse_atype(stream))
        constructors.append((con_name, tuple(arg_types)))
        if stream.at(PIPE):
            stream.next()
            continue
        break
    if not stream.at_end():
        raise stream.error("trailing input after data declaration")
    return SData(name=name, params=tuple(params), constructors=tuple(constructors), line=line)


def _contains_top_level(tokens: List[Token], start: int, kinds: Tuple[str, ...]) -> bool:
    depth = 0
    for token in tokens[start:]:
        if token.kind == LPAREN:
            depth += 1
        elif token.kind == RPAREN:
            depth -= 1
        elif depth == 0 and token.kind in kinds:
            return True
    return False


def _parse_signature(stream: _TokenStream, line: int) -> SSig:
    name = stream.next().text
    stream.expect(DOUBLE_COLON)
    ty = _parse_type(stream)
    if not stream.at_end():
        raise stream.error("trailing input after type signature")
    return SSig(name=name, type=ty, line=line)


def _parse_property(stream: _TokenStream, line: int) -> SProperty:
    name = stream.expect(LOWER).text
    binders: List[str] = []
    while stream.at(LOWER):
        binders.append(stream.next().text)
    stream.expect(EQUALS)
    segments: List[Tuple[SExpr, SExpr]] = []
    while True:
        lhs = _parse_expression(stream)
        stream.expect(EQUIV)
        rhs = _parse_expression(stream)
        segments.append((lhs, rhs))
        if stream.at(IMPLIES):
            stream.next()
            continue
        break
    if not stream.at_end():
        raise stream.error("trailing input after property")
    *conditions, (lhs, rhs) = segments
    return SProperty(
        name=name,
        binders=tuple(binders),
        conditions=tuple(conditions),
        lhs=lhs,
        rhs=rhs,
        line=line,
    )


def _parse_clause(stream: _TokenStream, line: int) -> SClause:
    name = stream.expect(LOWER).text
    patterns: List[SExpr] = []
    while not stream.at(EQUALS):
        patterns.append(_parse_pattern(stream))
    stream.expect(EQUALS)
    body = _parse_expression(stream)
    if not stream.at_end():
        raise stream.error("trailing input after function clause")
    return SClause(name=name, patterns=tuple(patterns), body=body, line=line)


def parse_module(source: str) -> SModule:
    """Parse a whole module."""
    module = SModule()
    for line_number, text in logical_lines(source):
        tokens = tokenize(text, line_number)
        stream = _TokenStream(tokens)
        first = stream.peek()
        if first.kind == KEYWORD_DATA:
            module.declarations.append(_parse_data(stream, line_number))
        elif len(tokens) > 2 and tokens[1].kind == DOUBLE_COLON:
            module.declarations.append(_parse_signature(stream, line_number))
        elif first.kind == LOWER:
            equals_index = next(
                (i for i, t in enumerate(tokens) if t.kind == EQUALS), None
            )
            if equals_index is None:
                raise ParseError("declaration has no '='", first.line, first.column)
            if _contains_top_level(tokens, equals_index + 1, (EQUIV, IMPLIES)):
                module.declarations.append(_parse_property(stream, line_number))
            else:
                module.declarations.append(_parse_clause(stream, line_number))
        else:
            raise ParseError(f"unexpected start of declaration {first.text!r}", first.line, first.column)
    return module
