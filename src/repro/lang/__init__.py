"""The surface language: lexer, parser, type inference and elaboration."""

from .ast import (
    SApp,
    SClause,
    SCon,
    SData,
    SExpr,
    SModule,
    SNum,
    SProperty,
    SSig,
    SType,
    STyCon,
    STyFun,
    STyVar,
    SVar,
)
from .elaborate import elaborate_module
from .infer import TypeInference, prettify_type_vars, surface_type_to_core
from .lexer import Token, logical_lines, tokenize
from .loader import (
    load_program,
    load_program_file,
    parse_equation_in_signature,
    parse_term_in_signature,
)
from .parser import parse_expression, parse_module, parse_type

__all__ = [
    "tokenize", "logical_lines", "Token",
    "parse_module", "parse_expression", "parse_type",
    "elaborate_module", "load_program", "load_program_file",
    "parse_term_in_signature", "parse_equation_in_signature",
    "TypeInference", "surface_type_to_core", "prettify_type_vars",
    "SModule", "SData", "SSig", "SClause", "SProperty",
    "SExpr", "SVar", "SCon", "SApp", "SNum",
    "SType", "STyCon", "STyVar", "STyFun",
]
