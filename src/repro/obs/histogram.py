"""Streaming latency histograms with fixed log-spaced buckets.

Fixed class-level bounds (not per-instance adaptive ones) keep snapshots from
different daemons and different uptimes directly comparable — the same
honesty rule the benchmark suite applies to its paired measurements.  Bounds
start at 100 µs and double 24 times (last finite bound ≈ 839 s, past any
request the service would ever hold), so one histogram spans store-replay
microseconds and cold-solve seconds without resizing.

Quantiles are the usual bucket estimate: find the bucket holding the target
rank and interpolate linearly inside it.  With doubling buckets the estimate
is within 2x, which is plenty to tell a p50 regression from a p99 tail.
"""

from __future__ import annotations

from typing import Dict, List

#: Op classes the service attributes each goal verdict to.  Order is the
#: display order in ``service_summary_table`` and ``repro trace summary``.
OP_CLASSES = ("store_replay", "warm_solve", "cold_solve", "rejected")

_FIRST_BOUND = 0.0001  # 100 µs
_GROWTH = 2.0
_BUCKET_COUNT = 24

#: Upper bounds (seconds) of the finite buckets; one overflow bucket follows.
BUCKET_BOUNDS = tuple(
    _FIRST_BOUND * (_GROWTH ** index) for index in range(_BUCKET_COUNT)
)


class LatencyHistogram:
    """Constant-space histogram: record is O(log buckets), snapshot is O(buckets)."""

    __slots__ = ("counts", "overflow", "count", "total", "max")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * len(BUCKET_BOUNDS)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        lo, hi = 0, len(BUCKET_BOUNDS)
        while lo < hi:
            mid = (lo + hi) // 2
            if seconds <= BUCKET_BOUNDS[mid]:
                hi = mid
            else:
                lo = mid + 1
        if lo < len(BUCKET_BOUNDS):
            self.counts[lo] += 1
        else:
            self.overflow += 1

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (0 when empty)."""

        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, float(q)))
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                upper = BUCKET_BOUNDS[index]
                within = (rank - seen) / bucket_count
                return min(self.max, lower + (upper - lower) * max(0.0, within))
            seen += bucket_count
        # Rank falls in the overflow bucket: the max is the best bound we have.
        return self.max

    def snapshot(self) -> Dict[str, object]:
        """Primitive-dict form for the ``metrics`` op (sparse bucket map)."""

        return {
            "count": self.count,
            "total": round(self.total, 6),
            "max": round(self.max, 6),
            "p50": round(self.quantile(0.50), 6),
            "p95": round(self.quantile(0.95), 6),
            "p99": round(self.quantile(0.99), 6),
            "buckets": {
                str(index): count
                for index, count in enumerate(self.counts)
                if count
            },
            "overflow": self.overflow,
        }
