"""Span/event primitives, the per-process tracer, and the bounded JSONL sink.

Design constraints (shared with :class:`~repro.search.phases.PhaseClock`):

* **Always on.**  There is no ``ProverConfig`` switch — a config field would
  change ``config_fingerprint`` and silently invalidate every existing result
  store.  The cost ceiling is instead enforced by construction: a span is one
  dict append to a bounded ring plus, only when a sink is configured, one
  append to the sink's pending list — serialization and file I/O happen on
  the sink's own writer thread, never on a request path.
* **Primitive dicts only.**  Spans cross the worker process boundary inside
  the outcome wire (``outcome["spans"]``), so they contain nothing but
  strings, floats, ints and bools — never terms, configs or exceptions.
* **Wall-clock anchors.**  Span ``start``/``end`` use ``time.time()`` so
  parent- and worker-side spans land on one comparable timeline (the Chrome
  exporter needs a shared epoch).  *Measured* durations reported elsewhere
  (``queued_seconds``) still come from ``time.monotonic()`` deltas.

A module-level singleton (:func:`get_tracer`) serves library callers; the
proof service owns a private :class:`Tracer` per daemon so sinks never leak
between co-resident test services.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional

#: Bumped only if existing trace files become unreadable; additive fields are
#: absence-benign, mirroring the result-store convention.
TRACE_SCHEMA = 1

#: Default rotation threshold for the JSONL sink (live file; one rotated
#: ``.1`` sibling is kept, so worst-case disk is about twice this).
DEFAULT_TRACE_MAX_BYTES = 32 * 1024 * 1024


def mint_trace_id() -> str:
    """A fresh 64-bit hex trace id (one per service request)."""

    return os.urandom(8).hex()


def mint_span_id() -> str:
    """A fresh 64-bit hex span id."""

    return os.urandom(8).hex()


def span_record(
    name: str,
    trace: str,
    *,
    span: Optional[str] = None,
    parent: str = "",
    op_class: str = "",
    start: Optional[float] = None,
    end: Optional[float] = None,
    attrs: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build a span as a plain dict (the only span representation there is).

    ``start``/``end`` are epoch seconds; both default to "now" so callers can
    mint a record up front and patch ``end`` when the work finishes.
    """

    now = time.time()
    return {
        "schema": TRACE_SCHEMA,
        "kind": "span",
        "name": str(name),
        "trace": str(trace),
        "span": str(span) if span else mint_span_id(),
        "parent": str(parent or ""),
        "op_class": str(op_class or ""),
        "start": float(start if start is not None else now),
        "end": float(end if end is not None else (start if start is not None else now)),
        "pid": os.getpid(),
        "tid": threading.current_thread().name,
        "attrs": dict(attrs or {}),
    }


def event_record(
    name: str,
    trace: str,
    *,
    parent: str = "",
    attrs: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build an instant event (a zero-duration mark, e.g. a worker crash)."""

    record = span_record(name, trace, parent=parent, attrs=attrs)
    record["kind"] = "event"
    return record


class TraceSink:
    """Append-only JSONL sink with a size bound and single-file rotation.

    On crossing ``max_bytes`` the live file is renamed to ``<path>.1``
    (clobbering any previous rotation) and a fresh file is started, so the
    sink can run under a daemon indefinitely without growing past roughly
    twice the bound.

    Writes are **asynchronous**: :meth:`write` appends the record to a
    pending list (one lock + one list append, so the request path pays
    nanoseconds, not syscalls — the 2% overhead envelope on warm replay is
    met by construction) and a daemon writer thread serializes and flushes
    batches, waking every ``flush_interval`` seconds or when the backlog
    passes ``_WAKE_BACKLOG``.  Consequences callers can rely on:

    * the live file lags emission by at most about ``flush_interval`` while
      the daemon runs, and :meth:`close` drains everything, so ``repro
      trace`` reads a complete file after shutdown and a near-live one
      before;
    * a record is serialized at *flush* time — mutating it after
      :meth:`write` races the writer (the in-tree emitters never do).
    """

    #: Pending-record count that wakes the writer early.  Deliberately small:
    #: it bounds memory under a sustained burst AND keeps each flush short —
    #: a big batch means a long GIL-holding serialization burst that lands as
    #: a latency spike on whatever request is in flight, where many small
    #: flushes spread the same work evenly.
    _WAKE_BACKLOG = 64

    def __init__(
        self,
        path: str,
        max_bytes: int = DEFAULT_TRACE_MAX_BYTES,
        flush_interval: float = 0.25,
    ) -> None:
        self.path = os.fspath(path)
        self.max_bytes = max(65536, int(max_bytes))
        self.flush_interval = max(0.01, float(flush_interval))
        directory = os.path.dirname(os.path.abspath(self.path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = self._handle.tell()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: List[Dict[str, object]] = []
        self._closed = False
        self._writer = threading.Thread(
            target=self._drain, name="trace-sink", daemon=True
        )
        self._writer.start()

    def write(self, record: Dict[str, object]) -> None:
        with self._lock:
            if self._closed:
                return
            self._pending.append(record)
            if len(self._pending) >= self._WAKE_BACKLOG:
                self._wake.notify()

    def _drain(self) -> None:
        """Writer thread: batch-serialize pending records until closed."""
        while True:
            with self._lock:
                if not self._pending:
                    if self._closed:
                        return
                    self._wake.wait(self.flush_interval)
                batch, self._pending = self._pending, []
            if batch:
                self._flush(batch)

    def _flush(self, batch: List[Dict[str, object]]) -> None:
        # Only the writer thread touches the handle after construction
        # (close() joins it first), so no lock is held across file I/O.
        for record in batch:
            line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            if self._bytes and self._bytes + len(line) > self.max_bytes:
                self._rotate()
            self._handle.write(line)
            self._bytes += len(line)
        self._handle.flush()

    def _rotate(self) -> None:
        self._handle.close()
        os.replace(self.path, self.path + ".1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = 0

    def close(self) -> None:
        """Drain the backlog, stop the writer, close the file.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wake.notify()
        self._writer.join(timeout=10.0)
        with self._lock:
            leftover, self._pending = self._pending, []
        if leftover:  # writer died or timed out mid-drain
            self._flush(leftover)
        self._handle.close()


class Tracer:
    """Bounded in-memory ring of recent records, optionally mirrored to disk.

    The ring is always on (tests and the ``metrics`` path read it without any
    configuration); the JSONL sink only exists when :meth:`configure_sink`
    was called (``serve --trace``).  All methods are thread-safe — the
    dispatcher thread, asyncio executor threads and worker-result plumbing
    all emit into one tracer.
    """

    def __init__(self, ring_capacity: int = 4096) -> None:
        self._ring: deque = deque(maxlen=max(16, int(ring_capacity)))
        self._lock = threading.Lock()
        self._sink: Optional[TraceSink] = None

    def configure_sink(
        self, path: str, max_bytes: int = DEFAULT_TRACE_MAX_BYTES
    ) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
            self._sink = TraceSink(path, max_bytes)

    @property
    def sink_path(self) -> Optional[str]:
        with self._lock:
            return self._sink.path if self._sink is not None else None

    def emit(self, record: Dict[str, object], persist: bool = True) -> None:
        """Record a span/event.  The in-memory ring always sees it;
        ``persist=False`` keeps it out of the JSONL sink — the service uses
        this to head-sample pure store-replay requests, whose spans carry no
        information the (exact) latency histograms don't already hold."""
        if not isinstance(record, dict):
            return
        with self._lock:
            self._ring.append(record)
            sink = self._sink if persist else None
        if sink is not None:
            sink.write(record)

    def emit_all(
        self, records: Optional[Iterable[Dict[str, object]]], persist: bool = True
    ) -> None:
        for record in records or ():
            self.emit(record, persist=persist)

    @contextmanager
    def span(
        self,
        name: str,
        trace: str,
        *,
        span: Optional[str] = None,
        parent: str = "",
        op_class: str = "",
        attrs: Optional[Dict[str, object]] = None,
    ) -> Iterator[Dict[str, object]]:
        """Context manager: yields the mutable record (callers may add attrs),
        stamps ``end`` and emits on exit — including on exceptions, so failed
        requests still leave a span."""

        record = span_record(
            name, trace, span=span, parent=parent, op_class=op_class, attrs=attrs
        )
        try:
            yield record
        finally:
            record["end"] = time.time()
            self.emit(record)

    def event(
        self,
        name: str,
        trace: str,
        *,
        parent: str = "",
        attrs: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        record = event_record(name, trace, parent=parent, attrs=attrs)
        self.emit(record)
        return record

    def recent(
        self, *, trace: Optional[str] = None, name: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Snapshot of the ring, optionally filtered by trace id and/or name."""

        with self._lock:
            records = list(self._ring)
        if trace is not None:
            records = [r for r in records if r.get("trace") == trace]
        if name is not None:
            records = [r for r in records if r.get("name") == name]
        return records

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None


_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer (ring only, never sink-configured).

    Engine components fall back to this when no service-owned tracer is
    injected, so a ``solve_suite`` call that *does* stamp a trace id on its
    tasks emits into memory even outside the service.  Untraced runs (the
    default for direct CLI solves) emit nothing — span emission is gated on
    the task's trace id, not on tracer availability.
    """

    return _GLOBAL_TRACER
