"""Read trace files back and turn them into Chrome trace JSON or summaries.

The reader half of the subsystem: everything here consumes the JSONL records
:class:`~repro.obs.trace.TraceSink` wrote (plus its one rotated sibling) and
never touches live service state, so the ``repro trace`` CLI works on a file
copied off a production box.

The Chrome trace-event output follows the subset of the spec Perfetto and
``chrome://tracing`` both accept: complete events (``ph: "X"``) with
microsecond ``ts``/``dur``, instant events (``ph: "i"``), and ``M`` metadata
rows naming the thread lanes.  Timestamps are re-based to the earliest span
so the viewer opens at t=0 instead of the Unix epoch.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple


def read_trace(path: str) -> List[Dict[str, object]]:
    """Parse a sink file (and its ``.1`` rotation, oldest first) into records.

    Torn trailing lines — possible when reading under a live daemon — and
    non-record lines are skipped rather than fatal.  Raises
    ``FileNotFoundError`` when neither file exists.
    """

    path = os.fspath(path)
    candidates = [p for p in (path + ".1", path) if os.path.exists(p)]
    if not candidates:
        raise FileNotFoundError(path)
    records: List[Dict[str, object]] = []
    for candidate in candidates:
        with open(candidate, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and record.get("kind") in ("span", "event"):
                    records.append(record)
    return records


def _duration(record: Dict[str, object]) -> float:
    return max(0.0, float(record.get("end") or 0.0) - float(record.get("start") or 0.0))


def chrome_trace(records: List[Dict[str, object]]) -> Dict[str, object]:
    """Convert records to a Chrome trace-event JSON object (Perfetto-openable)."""

    base = min(
        (float(r.get("start") or 0.0) for r in records), default=0.0
    )
    lanes: Dict[Tuple[int, str], int] = {}
    events: List[Dict[str, object]] = []
    for record in records:
        pid = int(record.get("pid") or 0)
        tid_name = str(record.get("tid") or "main")
        lane = lanes.setdefault((pid, tid_name), len(lanes) + 1)
        args = {
            "trace": record.get("trace"),
            "span": record.get("span"),
            "parent": record.get("parent"),
        }
        attrs = record.get("attrs")
        if isinstance(attrs, dict):
            args.update(attrs)
        event: Dict[str, object] = {
            "name": str(record.get("name") or "?"),
            "cat": str(record.get("op_class") or record.get("kind") or "span"),
            "ts": round((float(record.get("start") or 0.0) - base) * 1e6, 3),
            "pid": pid,
            "tid": lane,
            "args": args,
        }
        if record.get("kind") == "event":
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = round(_duration(record) * 1e6, 3)
        events.append(event)
    for (pid, tid_name), lane in lanes.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": lane,
                "args": {"name": tid_name},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _stats(durations: List[float]) -> Dict[str, float]:
    ordered = sorted(durations)
    count = len(ordered)

    def pct(q: float) -> float:
        return ordered[min(count - 1, int(q * count))]

    return {
        "count": count,
        "total": round(sum(ordered), 6),
        "p50": round(pct(0.50), 6),
        "p95": round(pct(0.95), 6),
        "p99": round(pct(0.99), 6),
        "max": round(ordered[-1], 6),
    }


def summarise(records: List[Dict[str, object]]) -> Dict[str, object]:
    """Span/event/trace counts plus exact per-op-class and per-name latency stats.

    Unlike the daemon's streaming histograms this sees every record, so the
    percentiles here are exact order statistics, not bucket estimates.
    """

    spans = [r for r in records if r.get("kind") == "span"]
    events = [r for r in records if r.get("kind") == "event"]
    traces = {str(r.get("trace")) for r in records if r.get("trace")}
    by_class: Dict[str, List[float]] = {}
    by_name: Dict[str, List[float]] = {}
    for record in spans:
        duration = _duration(record)
        op_class = str(record.get("op_class") or "")
        if op_class:
            by_class.setdefault(op_class, []).append(duration)
        by_name.setdefault(str(record.get("name") or "?"), []).append(duration)
    return {
        "spans": len(spans),
        "events": len(events),
        "traces": len(traces),
        "op_classes": {cls: _stats(values) for cls, values in by_class.items()},
        "names": {name: _stats(values) for name, values in by_name.items()},
    }


def slow_goals(
    records: List[Dict[str, object]],
    threshold: float,
    limit: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Goals whose queue-wait + solve time exceeds ``threshold`` seconds.

    Attribution per ``(trace, goal)``: queue-wait is the sum of that goal's
    ``queue`` spans, solve time the sum of its ``worker-solve`` spans (falling
    back to ``pool-dispatch`` when a worker died before reporting).  Sorted
    slowest-first.
    """

    buckets: Dict[Tuple[str, str], Dict[str, float]] = {}
    status: Dict[Tuple[str, str], str] = {}
    for record in records:
        if record.get("kind") != "span":
            continue
        attrs = record.get("attrs")
        goal = str(attrs.get("goal")) if isinstance(attrs, dict) and attrs.get("goal") else ""
        if not goal:
            continue
        key = (str(record.get("trace") or ""), goal)
        bucket = buckets.setdefault(
            key, {"queued": 0.0, "solve": 0.0, "dispatch": 0.0}
        )
        name = record.get("name")
        if name == "queue":
            bucket["queued"] += _duration(record)
        elif name == "worker-solve":
            bucket["solve"] += _duration(record)
        elif name == "pool-dispatch":
            bucket["dispatch"] += _duration(record)
        if isinstance(attrs, dict) and attrs.get("status"):
            status[key] = str(attrs["status"])
    rows: List[Dict[str, object]] = []
    for (trace, goal), bucket in buckets.items():
        solve = bucket["solve"] or bucket["dispatch"]
        total = bucket["queued"] + solve
        if total <= threshold:
            continue
        rows.append(
            {
                "trace": trace,
                "goal": goal,
                "queued_seconds": round(bucket["queued"], 6),
                "solve_seconds": round(solve, 6),
                "total_seconds": round(total, 6),
                "status": status.get((trace, goal), ""),
            }
        )
    rows.sort(key=lambda row: row["total_seconds"], reverse=True)
    return rows[:limit] if limit is not None else rows
