"""Structured tracing and latency telemetry for the proof service.

``repro.obs`` is the observability layer PR 10 threads through the serving
stack: primitive-dict spans with per-request trace IDs (:mod:`.trace`),
fixed-bucket streaming latency histograms (:mod:`.histogram`), and a Chrome
trace-event exporter so a whole multi-client run opens in Perfetto
(:mod:`.export`).  Everything here obeys the repo's standing invariants:
tracing is always on (no :class:`~repro.search.config.ProverConfig` switch —
store identity is untouched), spans cross process boundaries as plain dicts
(terms never do), and the per-span cost is kept at the
:class:`~repro.search.phases.PhaseClock` budget so the warm replay path stays
within its 2% overhead envelope.  See ``docs/observability.md``.
"""

from .export import chrome_trace, read_trace, slow_goals, summarise
from .histogram import BUCKET_BOUNDS, OP_CLASSES, LatencyHistogram
from .trace import (
    TraceSink,
    Tracer,
    event_record,
    get_tracer,
    mint_span_id,
    mint_trace_id,
    span_record,
)

__all__ = [
    "BUCKET_BOUNDS",
    "LatencyHistogram",
    "OP_CLASSES",
    "TraceSink",
    "Tracer",
    "chrome_trace",
    "event_record",
    "get_tracer",
    "mint_span_id",
    "mint_trace_id",
    "read_trace",
    "slow_goals",
    "span_record",
    "summarise",
]
