"""The proof service: a long-lived daemon with warm state and a lemma library.

``python -m repro serve`` turns the one-shot CLI into a resident process:

* :mod:`repro.service.server` — the service core and its asyncio JSON-lines
  front-end over a local unix socket.
* :mod:`repro.service.state` — the per-``Program.fingerprint()`` warm-state
  cache (elaborated programs, term banks, compiled rewrite systems, compiled
  evaluators) so repeat theories never re-elaborate or recompile.
* :mod:`repro.service.library` — the content-addressed lemma library: proved
  equations plus certificates, keyed by program fingerprint, verified with
  :func:`repro.proofs.checker.check_certificate` before they may be offered
  as hints to later goals on the same theory.
* :mod:`repro.service.client` — the blocking JSON-lines client used by
  ``python -m repro submit``, the tests, and the benchmarks.

The engine's hard invariant holds throughout: terms never cross process (or
even request) boundaries — programs travel as source text, hints as equation
source text, proofs as certificates, refutations as counterexample dicts.
"""

from .client import ServiceClient, ServiceProtocolError, SubmitOutcome
from .library import LemmaLibrary
from .server import ProofService, ServiceConfig, ServiceError, ServiceMetrics, serve
from .state import WarmState, WarmStateCache

__all__ = [
    "LemmaLibrary",
    "ProofService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "ServiceProtocolError",
    "SubmitOutcome",
    "WarmState",
    "WarmStateCache",
    "serve",
]
