"""The proof service: warm-state daemon, JSON-lines protocol, lemma reuse.

Two layers.  :class:`ProofService` is the synchronous core — it owns the
:class:`~repro.service.state.WarmStateCache`, the persistent
:class:`~repro.engine.store.ResultStore`, and the
:class:`~repro.service.library.LemmaLibrary`, and turns one ``submit``
request into a stream of per-goal verdicts plus a summary.  :func:`serve`
wraps it in an asyncio unix-socket front-end speaking newline-delimited JSON.

Protocol (one JSON object per line, ``id`` echoed back when present)::

    -> {"op": "ping"}
    <- {"op": "pong", "protocol": 1, ...}

    -> {"op": "submit", "suite": "isaplanner", "goals": ["prop_01"], ...}
    <- {"op": "verdict", "goal": "prop_01", "status": "proved",
        "certificate": {...}, "cached": true, ...}        (one per goal)
    <- {"op": "done", "proved": 1, "worker_spawns": 0, ...}

    -> {"op": "metrics"}      <- {"op": "metrics", "metrics": {...}}
    -> {"op": "shutdown"}     <- {"op": "bye"}

A ``submit`` carries either a built-in suite name or arbitrary program
``source`` text, optionally a ``goals`` name filter and extra ``conjectures``
(``{"name": ..., "equation": ...}``).  Everything on the wire is primitive
data — programs travel as source text, hints as equation source, proofs as
certificate dicts, refutations as counterexample dicts; terms never cross the
socket (nor, inside the daemon, a process or request boundary).

Per goal the service tries, in order: a decisive *hintless* store entry
(replayed parent-side, spawning no worker); certificate-verified library
lemmas offered as hints (the hinted attempt has its own store identity, so a
hinted replay is equally worker-free); a fresh dispatch to the multiprocess
scheduler.  Hint-free proofs that come back with certificates are fed to the
library, so each theory's lemma pool grows as it is exercised.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..engine.scheduler import STATUS_REJECTED, Scheduler, WorkerPool
from ..engine.store import ResultStore, StoreLockError, config_fingerprint
from ..engine.suite import goal_store_equation, solve_suite
from ..obs.histogram import OP_CLASSES, LatencyHistogram
from ..obs.trace import DEFAULT_TRACE_MAX_BYTES, Tracer, mint_span_id, mint_trace_id, span_record
from ..search.config import ProverConfig
from .library import LemmaLibrary, enrich_library
from .resolver import SourceResolver
from .state import WarmStateCache

__all__ = [
    "PROTOCOL_VERSION",
    "ProofService",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
    "serve",
]

PROTOCOL_VERSION = 1
"""Version of the JSON-lines protocol (bumped when messages change meaning)."""

REPLAY_SINK_SAMPLE = 16
"""Persist every Nth *pure store-replay* request's spans to the trace sink
(the first always).  Replayed requests are sub-millisecond and identical, so
their spans add nothing the exact in-memory latency histograms don't already
capture — but serializing even one JSONL record per request would bust the
2% overhead envelope on the replay hot path.  Requests that solve, reject or
crash anything are never sampled: they always persist in full."""


class ServiceError(RuntimeError):
    """A request the service cannot honour (bad program, unknown goal, ...).

    Reported to the client as an ``{"op": "error"}`` line; never tears down
    the daemon.
    """


@dataclass
class ServiceConfig:
    """Knobs of one daemon instance (CLI flags map 1:1 onto these)."""

    socket_path: str = "repro-serve.sock"
    """Unix socket the asyncio front-end listens on."""

    store_path: Optional[str] = None
    """Persistent result store; ``None`` runs memoryless (every goal re-solved)."""

    library_path: Optional[str] = None
    """Lemma library; ``None`` disables lemma learning and hint offers."""

    warm_cache_size: int = 8
    """How many theories' warm state stays resident (LRU beyond that)."""

    jobs: Optional[int] = None
    """Worker pool size per dispatch (default: CPU count)."""

    timeout: Optional[float] = None
    """Default per-goal budget in seconds (requests may override)."""

    hint_limit: int = 8
    """Most library lemmas offered to one goal (earliest proved win)."""

    explore: bool = False
    """Enrich the library in a background thread when a new theory arrives."""

    shutdown_grace: float = 2.0
    """Seconds an in-flight goal may keep its worker once shutdown starts."""

    worker_hook: Optional[str] = None
    """``"module:function"`` invoked per task inside workers (test seam only)."""

    prewarm: bool = False
    """Rebuild warm state at startup for every theory the store/library knows."""

    serialize_submits: bool = False
    """Run one submit at a time on a per-request scheduler (the pre-pool path).

    The escape hatch — and the paired-benchmark baseline — for the shared
    worker pool: requests serialise on a lock and each builds its own
    :class:`~repro.engine.scheduler.Scheduler`, exactly as before the
    concurrent request core existed.
    """

    client_max_inflight: int = 0
    """Most un-replayable goals one client may have queued/solving (0 = no cap)."""

    client_cpu_budget: float = 0.0
    """Cap on one client's cumulative worker-busy seconds (0 = no cap)."""

    trace_path: Optional[str] = None
    """JSONL trace sink (``serve --trace``); ``None`` keeps spans in the
    daemon's in-memory ring only — tracing itself is always on."""

    trace_max_bytes: int = DEFAULT_TRACE_MAX_BYTES
    """Rotation threshold of the trace sink (live file plus one ``.1``)."""


class _Latency:
    """Streaming count/total/max of one latency population."""

    __slots__ = ("count", "total", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def snapshot(self) -> Dict[str, float]:
        return {"count": self.count, "total": self.total, "max": self.max}


class ServiceMetrics:
    """Counters of one daemon lifetime; snapshots are primitive dicts.

    The snapshot's keys are the contract with
    :func:`repro.harness.report.service_summary_table` — metrics cross the
    socket as JSON, so the table consumes plain data, never this object.
    Counter updates from concurrent request threads go through :attr:`lock`
    (callers hold it around their increment batches; the snapshot takes it
    too, so a metrics reply never shows a half-applied request).
    """

    def __init__(self):
        self.lock = threading.Lock()
        self.started_at = time.monotonic()
        self.requests = 0
        self.goals = 0
        self.store_hits = 0
        self.store_misses = 0
        self.library_hints_offered = 0
        self.library_hints_used = 0
        self.library_assisted_goals = 0
        self.lemmas_learned = 0
        self.dispatched_goals = 0
        self.worker_spawns = 0
        self.rejected_goals = 0
        self.prewarmed_theories = 0
        self.errors = 0
        self.replay_latency = _Latency()
        self.solve_latency = _Latency()
        #: Client-observed latency per *goal*, one histogram per op class
        #: (store replay / warm solve / cold solve / rejected): time from
        #: request arrival to that goal's verdict emission.
        self.op_latency: Dict[str, LatencyHistogram] = {
            cls: LatencyHistogram() for cls in OP_CLASSES
        }
        #: Per-client counters: {client: {"requests", "served_goals", "rejected_goals"}}.
        self.clients: Dict[str, Dict[str, int]] = {}

    def client_counters(self, client: str) -> Dict[str, int]:
        """The (mutable) counter dict of one client; call under :attr:`lock`."""
        return self.clients.setdefault(
            client, {"requests": 0, "served_goals": 0, "rejected_goals": 0}
        )

    def snapshot(
        self,
        warm: Optional[dict] = None,
        library: Optional[dict] = None,
        pool: Optional[dict] = None,
    ) -> dict:
        warm = warm or {}
        library = library or {}
        pool = pool or {}
        with self.lock:
            return {
                "requests": self.requests,
                "goals": self.goals,
                "store_hits": self.store_hits,
                "store_misses": self.store_misses,
                "warm_hits": int(warm.get("hits") or 0),
                "warm_misses": int(warm.get("misses") or 0),
                "warm_evictions": int(warm.get("evictions") or 0),
                "warm_entries": int(warm.get("entries") or 0),
                "library_lemmas": int(library.get("lemmas") or 0),
                "library_rejected": int(library.get("rejected") or 0),
                "library_hints_offered": self.library_hints_offered,
                "library_hints_used": self.library_hints_used,
                "library_assisted_goals": self.library_assisted_goals,
                "lemmas_learned": self.lemmas_learned,
                "dispatched_goals": self.dispatched_goals,
                "worker_spawns": self.worker_spawns,
                "rejected_goals": self.rejected_goals,
                "prewarmed_theories": self.prewarmed_theories,
                "errors": self.errors,
                "replay_latency": self.replay_latency.snapshot(),
                "solve_latency": self.solve_latency.snapshot(),
                "op_latency": {
                    cls: histogram.snapshot()
                    for cls, histogram in self.op_latency.items()
                },
                "queue_depth": int(pool.get("queue_depth") or 0),
                "inflight_goals": int(pool.get("inflight") or 0),
                "pool_size": int(pool.get("pool_size") or 0),
                "active_sessions": int(pool.get("active_sessions") or 0),
                "max_concurrent_sessions": int(pool.get("max_concurrent_sessions") or 0),
                "interleaved_dispatches": int(pool.get("interleaves") or 0),
                "clients": {name: dict(counters) for name, counters in self.clients.items()},
                "uptime_seconds": time.monotonic() - self.started_at,
            }


def _equation_symbols(equation) -> frozenset:
    """The function symbols of a parsed equation (heads of all subterms).

    The goal-side input to the library's relevance ranking: built from real
    ``Sym`` heads, so intersecting lemma token sets against it never counts a
    variable name as shared vocabulary.
    """
    symbols = set()
    stack = [equation.lhs, equation.rhs]
    while stack:
        term = stack.pop()
        head = getattr(term, "_head", None)
        if head:
            symbols.add(head)
        fun = getattr(term, "fun", None)
        if fun is not None:
            stack.append(fun)
            stack.append(term.arg)
    return frozenset(symbols)


def _suite_source(suite: str) -> str:
    from ..benchmarks_data.registry import SUITE_PROGRAM_SOURCES

    try:
        return SUITE_PROGRAM_SOURCES[suite]
    except KeyError:
        known = ", ".join(sorted(SUITE_PROGRAM_SOURCES))
        raise ServiceError(f"unknown suite {suite!r} (known: {known})") from None


class ProofService:
    """The synchronous service core (the socket layer is optional dressing).

    Concurrent submits by default: each request joins the shared resident
    :class:`~repro.engine.scheduler.WorkerPool` as its own session, so two
    clients' goals interleave fairly (deficit-round-robin) instead of the
    second client waiting out the first client's whole batch — and a warm
    pool serves cold solves without spawning a process per request.
    ``serialize_submits`` restores the old one-at-a-time behaviour (per
    request scheduler, submit guard) as an escape hatch and benchmark
    baseline.  ``ping`` and ``metrics`` never wait on either path.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.metrics = ServiceMetrics()
        self.cache = WarmStateCache(self.config.warm_cache_size)
        self.store = ResultStore(self.config.store_path) if self.config.store_path else None
        self.library = (
            LemmaLibrary(self.config.library_path) if self.config.library_path else None
        )
        #: Per-daemon tracer: the ring is always on; a JSONL sink exists only
        #: under ``--trace``.  Owned here (not the module singleton) so two
        #: co-resident services never share a sink.
        self.tracer = Tracer()
        if self.config.trace_path:
            self.tracer.configure_sink(self.config.trace_path, self.config.trace_max_bytes)
        #: Pure-replay requests seen, for REPLAY_SINK_SAMPLE head-sampling.
        self._pure_replays = 0
        self._sample_lock = threading.Lock()
        #: The shared resident pool (no processes until the first dispatch).
        self.pool = WorkerPool(
            jobs=self.config.jobs,
            worker_hook=self.config.worker_hook,
            tracer=self.tracer,
        )
        self._submit_guard = threading.Lock()  # serialize_submits mode only
        self._active_scheduler: Optional[Scheduler] = None
        self._closing = False
        self._closed = False
        self._enriched: set = set()
        self._enrich_threads: List[threading.Thread] = []
        #: Cumulative worker-busy seconds per client (the CPU budget's meter).
        self._client_cpu: Dict[str, float] = {}
        self._lifecycle = threading.Condition()
        self._active_submits = 0
        if self.config.prewarm:
            self.prewarm()

    # -- request dispatch --------------------------------------------------------

    def handle_request(self, request: dict, emit: Callable[[dict], None]) -> None:
        """Handle one request, emitting every reply line through ``emit``.

        Never raises on bad requests — protocol errors become ``error`` lines
        (the daemon must survive any client).  The terminal line per request
        is one of ``pong``/``metrics``/``bye``/``done``/``error``.
        """
        ident = request.get("id")

        def reply(payload: dict) -> None:
            if ident is not None:
                payload = dict(payload, id=ident)
            emit(payload)

        op = request.get("op")
        # Minted before any work so even a failing submit's error line can be
        # correlated with the daemon-side spans it left behind.
        trace = mint_trace_id() if op == "submit" else ""
        try:
            if op == "ping":
                reply({"op": "pong", "protocol": PROTOCOL_VERSION, "pid": os.getpid()})
            elif op == "metrics":
                reply({"op": "metrics", "metrics": self.metrics_snapshot()})
            elif op == "shutdown":
                self.begin_shutdown()
                reply({"op": "bye"})
            elif op == "submit":
                reply(self.submit(request, reply, trace=trace))
            else:
                raise ServiceError(f"unknown op {op!r}")
        except ServiceError as error:
            with self.metrics.lock:
                self.metrics.errors += 1
            payload = {"op": "error", "error": str(error)}
            if trace:
                payload["trace"] = trace
            reply(payload)
        except Exception as error:  # noqa: BLE001 - daemon must survive any request
            with self.metrics.lock:
                self.metrics.errors += 1
            payload = {"op": "error", "error": f"internal error: {error!r}"}
            if trace:
                payload["trace"] = trace
            reply(payload)

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot(
            warm=self.cache.snapshot(),
            library=self.library.snapshot() if self.library else None,
            pool=None if self.config.serialize_submits else self.pool.snapshot(),
        )

    # -- prewarming ---------------------------------------------------------------

    def prewarm(self) -> int:
        """Rebuild warm state for every theory the store and library remember.

        Startup latency work behind ``--prewarm``: built-in suite names are
        recovered from the store's goal keys, and submitted theories from the
        library's recorded program sources (paired with suite labels mined
        from store entries carrying the same fingerprint).  Best-effort — a
        theory that no longer elaborates is skipped — and bounded by the warm
        cache's own LRU capacity.  Returns how many theories were built.
        """
        sources: Dict[str, str] = {}
        if self.store is not None:
            from ..benchmarks_data.registry import SUITE_PROGRAM_SOURCES

            suite_of_fingerprint: Dict[str, str] = {}
            for entry in self.store.entries():
                goal_key = str(entry.get("goal", ""))
                suite = goal_key.split("/", 1)[0] if "/" in goal_key else ""
                if not suite:
                    continue
                suite_of_fingerprint.setdefault(str(entry.get("program", "")), suite)
                if suite in SUITE_PROGRAM_SOURCES:
                    sources.setdefault(suite, SUITE_PROGRAM_SOURCES[suite])
        else:
            suite_of_fingerprint = {}
        if self.library is not None:
            for fingerprint in self.library.fingerprints():
                source = self.library.source_for(fingerprint)
                if not source:
                    continue
                digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
                suite = suite_of_fingerprint.get(fingerprint) or f"submitted-{digest[:12]}"
                sources.setdefault(suite, source)
        warmed = 0
        for suite, source in sources.items():
            if self._closing:
                break
            try:
                _, was_warm = self.cache.get(source, suite)
            except Exception:  # noqa: BLE001 - prewarm is best-effort
                continue
            if not was_warm:
                warmed += 1
        with self.metrics.lock:
            self.metrics.prewarmed_theories += warmed
        return warmed

    # -- the submit pipeline ------------------------------------------------------

    def submit(
        self, request: dict, emit: Callable[[dict], None], trace: str = ""
    ) -> dict:
        """Solve one submission; emits ``verdict`` lines, returns the ``done`` line."""
        with self._lifecycle:
            if self._closing:
                raise ServiceError("service is shutting down")
            self._active_submits += 1
        try:
            if self.config.serialize_submits:
                with self._submit_guard:
                    return self._submit(request, emit, trace=trace)
            return self._submit(request, emit, trace=trace)
        finally:
            with self._lifecycle:
                self._active_submits -= 1
                self._lifecycle.notify_all()

    def _submit(
        self, request: dict, emit: Callable[[dict], None], trace: str = ""
    ) -> dict:
        if self._closing:
            raise ServiceError("service is shutting down")
        trace = trace or mint_trace_id()
        started = time.monotonic()
        client = str(request.get("client") or "default")
        with self.metrics.lock:
            self.metrics.requests += 1
            self.metrics.client_counters(client)["requests"] += 1
        # The root span of the whole request.  Emitted manually rather than
        # via the tracer's context manager because whether it *persists* to
        # the sink is only known at the end: pure store-replay requests are
        # head-sampled (REPLAY_SINK_SAMPLE), while a request that raised or
        # did real work always leaves its span behind.
        request_span = mint_span_id()
        request_record = span_record(
            "request", trace, span=request_span, attrs={"client": client}
        )
        sink_decision = {"persist": True}  # exceptions always persist
        try:
            return self._submit_traced(
                request, emit, trace, request_span, request_record,
                started, client, sink_decision,
            )
        finally:
            request_record["end"] = time.time()
            self.tracer.emit_all(
                sink_decision.pop("deferred", None),
                persist=sink_decision["persist"],
            )
            self.tracer.emit(request_record, persist=sink_decision["persist"])

    def _submit_traced(
        self,
        request: dict,
        emit: Callable[[dict], None],
        trace: str,
        request_span: str,
        request_record: dict,
        started: float,
        client: str,
        sink_decision: dict,
    ) -> dict:

        source, suite = self._resolve_source(request)
        state, was_warm = self._warm_state(source, suite)
        request_record["attrs"].update({"suite": suite, "warm": was_warm})
        conjectures = self._conjectures(request)
        with state.guard:
            problems = self._select_problems(state, request, conjectures)
        prover_config = self._prover_config(request)

        # Verdict spans for *cached* goals are deferred: whether they persist
        # to the sink depends on whether this request turns out to be a pure
        # store replay (then it is head-sampled) or did real work (then
        # everything persists).  The ring and the histograms see all of them
        # either way — only sink I/O is sampled, because on the sub-millisecond
        # replay path serializing even one JSONL record busts the 2% envelope.
        deferred_replay_spans: List[dict] = []
        sink_decision["deferred"] = deferred_replay_spans  # flushed by _submit
        saw_work = False  # any solve or rejection, i.e. not a pure replay

        def verdict_span(goal: str, status: str, op_class: str, emit_start: float) -> None:
            nonlocal saw_work
            span = span_record(
                "verdict",
                trace,
                parent=request_span,
                op_class=op_class,
                start=emit_start,
                end=time.time(),
                attrs={"goal": goal, "status": status, "op_class": op_class},
            )
            if op_class == "store_replay":
                deferred_replay_spans.append(span)
            else:
                saw_work = True
                self.tracer.emit(span)

        problems, rejected = self._admit(client, state, problems, prover_config)
        for payload in rejected:
            payload["trace"] = trace
            with self.metrics.lock:
                self.metrics.op_latency["rejected"].record(time.monotonic() - started)
            emit_start = time.time()
            emit(payload)
            goal_name = str(payload.get("goal") or "")
            verdict_span(
                f"{suite}/{goal_name}" if goal_name else "",
                STATUS_REJECTED,
                "rejected",
                emit_start,
            )

        with state.guard:
            hypotheses, offered = self._plan_hints(state, problems, prover_config, request)

        # The resolver rides on the engine (solve_suite's own resolver
        # argument only applies to schedulers it constructs itself): the
        # workers re-elaborate — or, on the pool, reuse a cached elaboration
        # of — the submitted source in their own banks.
        resolver = SourceResolver(source, suite, conjectures)
        if self.config.serialize_submits:
            engine = Scheduler(
                jobs=self.config.jobs,
                resolver=resolver,
                worker_hook=self.config.worker_hook,
                tracer=self.tracer,
            )
            self._active_scheduler = engine
        else:
            engine = self.pool.session(resolver, client=client)
        verdicts: List[dict] = []

        def op_class_of(record) -> str:
            if record.status == STATUS_REJECTED:
                return "rejected"
            if record.cached:
                return "store_replay"
            return "warm_solve" if was_warm else "cold_solve"

        def progress(record) -> None:
            verdict = self._verdict_payload(record, offered, trace)
            verdicts.append(verdict)
            op_class = op_class_of(record)
            with self.metrics.lock:
                self.metrics.op_latency[op_class].record(time.monotonic() - started)
            emit_start = time.time()
            emit(verdict)
            # Qualified goal name, matching the queue/worker-solve spans, so
            # `trace slow` groups one goal's spans into one attribution row.
            verdict_span(
                f"{record.suite}/{record.name}" if record.suite else record.name,
                record.status,
                op_class,
                emit_start,
            )

        try:
            if problems:
                result = solve_suite(
                    problems,
                    prover_config,
                    suite_name=suite,
                    hypotheses=hypotheses,
                    progress=progress,
                    jobs=self.config.jobs,
                    store=self.store,
                    resolver=resolver,
                    scheduler=engine,
                    trace=trace,
                    trace_parent=request_span,
                )
                records = result.records
            else:
                records = []  # every goal was rejected before dispatch
        finally:
            if self.config.serialize_submits:
                self._active_scheduler = None

        if records:
            with state.guard:
                learned = self._learn_lemmas(state, records, source)
        else:
            learned = 0
        self._maybe_enrich(source, suite, state.fingerprint)

        spawns = getattr(engine, "worker_spawns", None)
        if spawns is None:
            spawns = len(engine.worker_stats) + sum(
                int(stats.get("respawns", 0)) for stats in engine.worker_stats.values()
            )
        busy = sum(
            float(stats.get("busy_seconds") or 0.0) for stats in engine.worker_stats.values()
        )
        replayed = sum(1 for record in records if record.cached)
        dispatched = sum(
            1 for record in records
            if not record.cached and record.status != "out-of-scope"
        )
        assisted = [r for r in records if r.hint_steps > 0]
        wall = time.monotonic() - started

        with self.metrics.lock:
            self.metrics.goals += len(records)
            self.metrics.store_hits += replayed
            self.metrics.store_misses += len(records) - replayed
            self.metrics.library_hints_used += sum(r.hint_steps for r in assisted)
            self.metrics.library_assisted_goals += len(assisted)
            self.metrics.lemmas_learned += learned
            self.metrics.dispatched_goals += dispatched
            self.metrics.worker_spawns += spawns
            self.metrics.rejected_goals += len(rejected)
            counters = self.metrics.client_counters(client)
            counters["served_goals"] += len(records)
            counters["rejected_goals"] += len(rejected)
            self._client_cpu[client] = self._client_cpu.get(client, 0.0) + busy
            # Pure-replay requests answer without a single worker; their wall
            # time is the service's hot-path latency.  Anything that dispatched
            # is dominated by proof search and lands in the other population.
            (self.metrics.replay_latency if spawns == 0 else self.metrics.solve_latency).record(wall)

        request_record["attrs"].update(
            {"goals": len(records), "rejected": len(rejected), "spawns": spawns}
        )
        if saw_work:
            sink_decision["persist"] = True
        else:
            # A pure store replay: head-sample its spans into the sink (the
            # first such request always lands, so smoke runs are deterministic).
            with self._sample_lock:
                sink_decision["persist"] = (
                    self._pure_replays % REPLAY_SINK_SAMPLE == 0
                )
                self._pure_replays += 1
        return {
            "op": "done",
            "trace": trace,
            "suite": suite,
            "client": client,
            "program": state.fingerprint,
            "warm": was_warm,
            "total": len(records),
            "proved": sum(1 for r in records if r.proved),
            "disproved": sum(1 for r in records if r.disproved),
            "failed": sum(
                1 for r in records if not r.proved and not r.disproved
            ),
            "store_hits": replayed,
            "dispatched": dispatched,
            "rejected": len(rejected),
            "worker_spawns": spawns,
            "library_hints_offered": sum(len(h) for h in hypotheses.values()),
            "library_hints_used": sum(r.hint_steps for r in assisted),
            "lemmas_learned": learned,
            "seconds": wall,
        }

    # -- submit helpers -----------------------------------------------------------

    def _resolve_source(self, request: dict) -> Tuple[str, str]:
        source = request.get("source")
        suite = request.get("suite")
        if source is not None:
            source = str(source)
            if not source.strip():
                raise ServiceError("submitted program source is empty")
            digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
            return source, str(suite or f"submitted-{digest[:12]}")
        if suite:
            return _suite_source(str(suite)), str(suite)
        raise ServiceError("submit needs either a suite name or program source")

    def _warm_state(self, source: str, suite: str):
        from ..core.exceptions import CycleQError

        try:
            return self.cache.get(source, suite)
        except CycleQError as error:
            raise ServiceError(f"program does not elaborate: {error}") from None

    @staticmethod
    def _conjectures(request: dict) -> List[Tuple[str, str]]:
        conjectures: List[Tuple[str, str]] = []
        for entry in request.get("conjectures") or ():
            if not isinstance(entry, dict) or "name" not in entry or "equation" not in entry:
                raise ServiceError(
                    'each conjecture needs {"name": ..., "equation": ...}'
                )
            conjectures.append((str(entry["name"]), str(entry["equation"])))
        return conjectures

    def _select_problems(self, state, request: dict, conjectures: List[Tuple[str, str]]):
        from ..core.exceptions import CycleQError

        problems = []
        names = request.get("goals")
        if names:
            unknown = [str(n) for n in names if str(n) not in state.problems]
            if unknown:
                raise ServiceError(
                    f"unknown goal(s) {', '.join(unknown)} in theory {state.suite}"
                )
            problems.extend(state.problem_for(str(name)) for name in names)
        elif not conjectures:
            problems.extend(state.problems.values())
        for name, equation in conjectures:
            try:
                problems.append(state.problem_for(name, equation))
            except CycleQError as error:
                raise ServiceError(
                    f"conjecture {name} does not parse: {error}"
                ) from None
        if not problems:
            raise ServiceError("submission selects no goals")
        return problems

    def _replayable(self, state, problem, config_fp: str) -> bool:
        """Whether the goal answers from the store without touching a worker."""
        if self.store is None:
            return False
        key = ResultStore.make_key(
            state.fingerprint,
            f"{problem.suite}/{problem.name}",
            goal_store_equation(problem.goal),
            config_fp,
        )
        stored = self.store.peek(key)
        return stored is not None and stored.get("status") in ("proved", "disproved")

    def _admit(
        self, client: str, state, problems, prover_config: ProverConfig
    ) -> Tuple[list, List[dict]]:
        """Apply per-client budgets; returns ``(admitted, rejected verdict lines)``.

        Budgets gate only *dispatch*: a goal answerable from the store replays
        for free and is always admitted.  ``client_max_inflight`` bounds how
        many un-replayable goals a client may have queued or on a worker at
        once (summed over its concurrent requests, approximately — admission
        reads the pool's load before this request's session registers);
        ``client_cpu_budget`` caps the client's cumulative worker-busy seconds
        over the daemon's lifetime.  Rejected goals get a polite terminal
        verdict line instead of silently vanishing from the batch.
        """
        max_inflight = int(self.config.client_max_inflight or 0)
        cpu_budget = float(self.config.client_cpu_budget or 0.0)
        if max_inflight <= 0 and cpu_budget <= 0.0:
            return problems, []
        config_fp = config_fingerprint(prover_config)
        with self.metrics.lock:
            cpu_used = self._client_cpu.get(client, 0.0)
        inflight = 0 if self.config.serialize_submits else self.pool.client_load(client)
        headroom = max_inflight - inflight if max_inflight > 0 else None
        admitted: list = []
        rejected: List[dict] = []
        for problem in problems:
            if self._replayable(state, problem, config_fp):
                admitted.append(problem)
                continue
            if cpu_budget > 0.0 and cpu_used >= cpu_budget:
                rejected.append(
                    self._rejected_payload(
                        problem,
                        f"budget: client {client!r} used {cpu_used:.1f}s of its "
                        f"{cpu_budget:.1f}s cpu budget",
                    )
                )
                continue
            if headroom is not None and headroom <= 0:
                rejected.append(
                    self._rejected_payload(
                        problem,
                        f"budget: client {client!r} is at its in-flight limit "
                        f"({max_inflight} goal(s))",
                    )
                )
                continue
            if headroom is not None:
                headroom -= 1
            admitted.append(problem)
        return admitted, rejected

    @staticmethod
    def _rejected_payload(problem, reason: str) -> dict:
        return {
            "op": "verdict",
            "goal": problem.name,
            "suite": problem.suite,
            "status": STATUS_REJECTED,
            "seconds": 0.0,
            "queued_seconds": 0.0,
            "cached": False,
            "variant": "default",
            "hints_offered": 0,
            "hint_steps": 0,
            "reason": reason,
        }

    def _prover_config(self, request: dict) -> ProverConfig:
        # emit_proofs always: the store must hold certificates for the client
        # to receive on replay, and the library can only learn certified
        # lemmas.  Everything else mirrors the bench CLI's knobs.
        changes: Dict[str, object] = {"emit_proofs": True}
        timeout = request.get("timeout", self.config.timeout)
        if timeout is not None:
            changes["timeout"] = float(timeout)
        if request.get("falsify"):
            changes["falsify_first"] = True
        return ProverConfig().with_(**changes)

    def _plan_hints(
        self, state, problems, prover_config: ProverConfig, request: dict
    ) -> Tuple[Dict[str, List[str]], Dict[str, List[str]]]:
        """Decide which goals get library hints.

        A goal with a decisive *hintless* store entry is left alone — the
        replay path is strictly cheaper than any hinted attempt.  Everything
        else is offered the theory's verified lemmas (minus the goal's own
        equation: a goal must never be handed itself as a granted hypothesis),
        ranked by relevance: lemmas sharing the most function symbols with the
        goal come first, so the offer limit keeps likely rewrites instead of
        merely the oldest lemmas.  Returns ``(hypotheses for solve_suite,
        offers per goal)``.
        """
        hypotheses: Dict[str, List[str]] = {}
        offered: Dict[str, List[str]] = {}
        if self.library is None or request.get("use_hints") is False:
            return hypotheses, offered
        if self.library.lemma_count(state.fingerprint) == 0:
            return hypotheses, offered
        config_fp = config_fingerprint(prover_config)
        for problem in problems:
            if self._replayable(state, problem, config_fp):
                continue
            hints = self.library.hints_for(
                state.fingerprint,
                exclude={str(problem.goal.equation)},
                checker=state.checker,
                limit=self.config.hint_limit,
                goal_symbols=_equation_symbols(problem.goal.equation),
            )
            if hints:
                hypotheses[problem.name] = hints
                offered[problem.name] = hints
                with self.metrics.lock:
                    self.metrics.library_hints_offered += len(hints)
        return hypotheses, offered

    @staticmethod
    def _verdict_payload(
        record, offered: Dict[str, List[str]], trace: str = ""
    ) -> dict:
        payload = {
            "op": "verdict",
            "goal": record.name,
            "suite": record.suite,
            "status": record.status,
            "seconds": record.seconds,
            # Queue-wait attributed separately from solve time: what the goal
            # spent waiting for a worker, not proving (0 for store replays).
            "queued_seconds": record.queued_seconds,
            "cached": record.cached,
            "variant": record.variant,
            "hints_offered": record.hints_offered,
            "hint_steps": record.hint_steps,
        }
        if trace:
            payload["trace"] = trace
        if record.reason:
            payload["reason"] = record.reason
        if record.certificate is not None:
            payload["certificate"] = record.certificate
        if record.counterexample is not None:
            payload["counterexample"] = record.counterexample
        if offered.get(record.name):
            payload["hints"] = list(offered[record.name])
        return payload

    def _learn_lemmas(self, state, records, source: str) -> int:
        """Feed standalone certified proofs of this run into the library.

        A proof that *used* a granted hypothesis (``hint_steps > 0``) carries
        Hyp vertices, so its certificate does not stand alone; a proof that
        merely had hints on offer is fine.  Either way the certificate is
        re-checked hypothesis-free against the warm program before entering
        the library — a lemma that fails its own certificate must never be
        persisted, let alone offered.  (Replayed records re-add harmlessly:
        the library dedupes.)
        """
        if self.library is None:
            return 0
        learned = 0
        for record in records:
            if not record.proved or record.certificate is None:
                continue
            if record.hint_steps:
                continue
            problem = state.problems.get(record.name)
            goal = problem.goal if problem is not None else None
            if goal is None:
                cached = state.extra_problems.get(record.name)
                goal = cached[1].goal if cached is not None else None
            if goal is None or goal.conditions:
                continue
            equation = str(goal.equation)
            if self.library.certificate_for(state.fingerprint, equation) is not None:
                continue  # already held; skip the re-check
            report = state.checker.check(record.certificate, goal_equation=equation)
            if not report.ok or report.hypotheses:
                continue
            if self.library.add(
                state.fingerprint,
                equation,
                record.certificate,
                program_source=source,
            ):
                learned += 1
        return learned

    def _maybe_enrich(self, source: str, suite: str, fingerprint: str) -> None:
        if not self.config.explore or self.library is None or self._closing:
            return
        if fingerprint in self._enriched:
            return
        self._enriched.add(fingerprint)

        def work() -> None:
            try:
                enrich_library(source, suite, self.library)
            except Exception:  # noqa: BLE001 - enrichment is best-effort
                with self.metrics.lock:
                    self.metrics.errors += 1

        thread = threading.Thread(target=work, name=f"repro-enrich-{suite}", daemon=True)
        self._enrich_threads.append(thread)
        thread.start()

    # -- lifecycle ----------------------------------------------------------------

    def begin_shutdown(self, grace: Optional[float] = None) -> None:
        """Start draining: refuse new submits, bound everything in flight.

        Thread-safe and idempotent — this is what the daemon's SIGTERM/SIGINT
        handler calls while submits may be running in executor threads.  Both
        engines drain: the shared pool fails all queued goals fast and bounds
        on-worker goals by ``grace``, and a serialized-mode scheduler (if one
        is mid-run) does the same for its batch.
        """
        self._closing = True
        grace_seconds = self.config.shutdown_grace if grace is None else grace
        scheduler = self._active_scheduler
        if scheduler is not None:
            scheduler.request_shutdown(grace_seconds)
        self.pool.request_shutdown(grace_seconds)

    def close(self) -> None:
        """Drain, then flush and release the store and library (idempotent)."""
        if self._closed:
            return
        self.begin_shutdown()
        # Wait for in-flight submits (both modes) to settle: the pool's drain
        # fails their remaining goals within shutdown_grace, so this converges.
        deadline = time.monotonic() + self.config.shutdown_grace + 10.0
        with self._lifecycle:
            while self._active_submits and time.monotonic() < deadline:
                self._lifecycle.wait(timeout=0.1)
            self._closed = True
        self.pool.close(timeout=self.config.shutdown_grace + 5.0)
        for thread in self._enrich_threads:
            thread.join(timeout=self.config.shutdown_grace)
        if self.store is not None:
            self.store.close()
        if self.library is not None:
            self.library.close()
        self.tracer.close()

    def __enter__(self) -> "ProofService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -----------------------------------------------------------------------------
# asyncio front-end
# -----------------------------------------------------------------------------


def _encode(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


async def _handle_connection(service: ProofService, stop: asyncio.Event, reader, writer) -> None:
    loop = asyncio.get_running_loop()
    try:
        await _serve_connection(service, stop, loop, reader, writer)
    except asyncio.CancelledError:
        # Daemon teardown cancelled us mid-read; the client already got its
        # terminal line (or a closed socket, which the client maps to a clean
        # error).  Completing normally keeps the streams machinery quiet.
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except BaseException:  # noqa: BLE001 - includes CancelledError at teardown
            pass


async def _serve_connection(service: ProofService, stop: asyncio.Event, loop, reader, writer) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request is not an object")
            except ValueError as error:
                writer.write(_encode({"op": "error", "error": f"bad request line: {error}"}))
                await writer.drain()
                continue

            # The core is blocking (it runs proof search); stream its replies
            # back through an asyncio queue so verdicts reach the client as
            # they are decided, not when the whole request finishes.
            queue: asyncio.Queue = asyncio.Queue()
            done = object()

            def emit(payload: dict) -> None:
                loop.call_soon_threadsafe(queue.put_nowait, payload)

            def run_request(req=request) -> None:
                try:
                    service.handle_request(req, emit)
                finally:
                    loop.call_soon_threadsafe(queue.put_nowait, done)

            future = loop.run_in_executor(None, run_request)
            terminal: Optional[dict] = None
            while True:
                payload = await queue.get()
                if payload is done:
                    break
                terminal = payload
                writer.write(_encode(payload))
                await writer.drain()
            await future
            if terminal is not None and terminal.get("op") == "bye":
                stop.set()
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client vanished
        pass


async def serve(
    config: Optional[ServiceConfig] = None,
    *,
    ready: Optional[Callable[[], None]] = None,
) -> None:
    """Run the daemon until a shutdown request or SIGTERM/SIGINT.

    ``ready`` is called once the socket is listening (the tests and the CLI's
    startup message hook).  On the way out the service drains the in-flight
    request (bounded by :attr:`ServiceConfig.shutdown_grace`), flushes the
    store and library, and removes the socket file.
    """
    config = config or ServiceConfig()
    service = ProofService(config)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def on_signal() -> None:
        # Runs on the event loop; the heavy lifting (killing stragglers) is
        # the scheduler's, triggered through the sticky shutdown flag.
        service.begin_shutdown()
        stop.set()

    installed: List[signal.Signals] = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, on_signal)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix loop
            pass

    socket_path = config.socket_path
    if os.path.exists(socket_path):
        # A previous daemon may have died without cleanup; binding over a live
        # socket must fail loudly, binding over a dead one must succeed.
        try:
            probe_reader, probe_writer = await asyncio.open_unix_connection(socket_path)
        except (ConnectionRefusedError, FileNotFoundError, OSError):
            os.unlink(socket_path)
        else:
            probe_writer.close()
            await probe_writer.wait_closed()
            service.close()
            raise ServiceError(f"another daemon is already serving on {socket_path}")

    connections: set = set()

    async def on_connection(reader, writer) -> None:
        task = asyncio.current_task()
        connections.add(task)
        try:
            await _handle_connection(service, stop, reader, writer)
        finally:
            connections.discard(task)

    server = await asyncio.start_unix_server(on_connection, path=socket_path)
    try:
        if ready is not None:
            ready()
        async with server:
            await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        server.close()
        await server.wait_closed()
        # Idle keep-alive connections would otherwise be cancelled abruptly
        # when the loop tears down; cancel them here, where the handler turns
        # cancellation into a quiet close.
        for task in list(connections):
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        # Drain the in-flight request off-loop: close() blocks on the submit
        # guard, and the executor thread holding it needs the loop alive to
        # flush its remaining replies.
        await loop.run_in_executor(None, service.close)
        try:
            os.unlink(socket_path)
        except OSError:  # pragma: no cover - already gone
            pass


def serve_forever(config: Optional[ServiceConfig] = None) -> int:
    """Blocking entry point for the CLI: run :func:`serve`, map errors to exits."""
    try:
        asyncio.run(serve(config, ready=lambda: print(
            f"repro serve: listening on {(config or ServiceConfig()).socket_path}",
            file=sys.stderr,
        )))
    except (ServiceError, StoreLockError) as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:  # pragma: no cover - signal handler normally wins
        return 0
    return 0
