"""Content-addressed lemma library: proved equations with their certificates.

The library maps a ``Program.fingerprint()`` to the equations proved over that
theory, each carrying the portable :class:`~repro.proofs.certificate`
encoding of its proof.  Lemmas are *offered as hints* to later goals on the
same theory — but only after their certificate has been independently
re-checked (:meth:`LemmaLibrary.hints_for`), so a corrupted or tampered
library line can never smuggle an unproved equation into someone's proof as a
granted hypothesis.  Lemmas ship as equation source text plus certificate
dicts — primitive data only; terms never enter or leave the file.

Persistence is schema-versioned JSONL with the same discipline as the result
store: append-only, torn lines skipped, foreign schema versions skipped
loudly, and an advisory single-writer file lock so two daemons cannot
interleave lines.  Two line kinds::

    {"schema": 1, "kind": "program", "program": <fp>, "source": <text>}
    {"schema": 1, "kind": "lemma", "program": <fp>, "equation": <text>,
     "certificate": {...}}

The ``program`` line records the theory's source once per fingerprint, making
the file self-contained: any process can re-verify every lemma from the file
alone (:meth:`LemmaLibrary.verify_all`).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import warnings
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..engine.store import acquire_path_lock, release_path_lock

__all__ = ["LemmaLibrary", "enrich_library", "equation_symbols", "LIBRARY_SCHEMA_VERSION"]

LIBRARY_SCHEMA_VERSION = 1
"""Schema of the library's JSONL lines (bumped when their meaning changes)."""

_TOKEN = re.compile(r"[A-Za-z_][A-Za-z0-9_']*")


def equation_symbols(source: str) -> FrozenSet[str]:
    """The identifier tokens of an equation's source text.

    The relevance signal for hint ranking: a lemma whose tokens overlap the
    goal's *function symbols* talks about the same operations.  Variable
    names are not distinguished here (the lemma side is never parsed), but
    intersecting against a goal-side set built from real symbols filters
    them out in practice.
    """
    return frozenset(_TOKEN.findall(source))


class LemmaLibrary:
    """Certified lemmas per program fingerprint, persisted as JSONL."""

    def __init__(self, path: str, lock: bool = True):
        self.path = os.fspath(path)
        self._lock_key = acquire_path_lock(self.path, what="lemma library") if lock else None
        # fingerprint -> {equation source: certificate dict}, insertion-ordered
        # (earlier lemmas tend to be smaller/more fundamental, and hint order
        # matters under ProverConfig.max_hints truncation).
        self._lemmas: Dict[str, Dict[str, dict]] = {}
        self._sources: Dict[str, str] = {}
        # Verification is lazy and memoised per (fingerprint, certificate
        # digest): True = certificate checked out, False = rejected (never
        # offered).  Keying by digest rather than equation means repeated
        # offers on a hot theory skip re-verification, while a *different*
        # certificate for the same equation naturally misses the memo.
        self._verdicts: Dict[Tuple[str, str], bool] = {}
        self._digests: Dict[Tuple[str, str], str] = {}
        self._tokens: Dict[Tuple[str, str], FrozenSet[str]] = {}
        self.schema_skipped = 0
        self.rejected = 0
        self.hints_served = 0
        self._guard = threading.RLock()  # submit thread vs enrichment thread
        self._load()

    # -- persistence ------------------------------------------------------------

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        foreign: set = set()
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn write; ignore
                if not isinstance(entry, dict):
                    continue
                schema = entry.get("schema", 0)
                if schema != LIBRARY_SCHEMA_VERSION:
                    self.schema_skipped += 1
                    foreign.add(str(schema))
                    continue
                kind = entry.get("kind")
                fingerprint = str(entry.get("program", ""))
                if not fingerprint:
                    continue
                if kind == "program":
                    source = entry.get("source")
                    if isinstance(source, str) and source:
                        self._sources.setdefault(fingerprint, source)
                elif kind == "lemma":
                    equation = str(entry.get("equation", ""))
                    certificate = entry.get("certificate")
                    if equation and isinstance(certificate, dict):
                        self._lemmas.setdefault(fingerprint, {})[equation] = certificate
        if self.schema_skipped:
            rendered = ", ".join(sorted(foreign))
            warnings.warn(
                f"{self.path}: skipped {self.schema_skipped} line(s) with library "
                f"schema {rendered} (this build reads schema {LIBRARY_SCHEMA_VERSION})",
                RuntimeWarning,
                stacklevel=3,
            )

    def _append(self, entry: dict) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")

    def close(self) -> None:
        """Release the advisory file lock (idempotent)."""
        release_path_lock(self._lock_key)
        self._lock_key = None

    def __enter__(self) -> "LemmaLibrary":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # -- growing the library ----------------------------------------------------

    def add(
        self,
        fingerprint: str,
        equation: str,
        certificate: dict,
        program_source: Optional[str] = None,
    ) -> bool:
        """Record one proved lemma; returns ``True`` when it was new.

        The certificate is stored as given — verification happens when the
        lemma is *offered* (:meth:`hints_for`), so a library written by an
        older or buggy build degrades to rejected hints, never to unsound
        proofs.  ``program_source`` makes the file self-contained (recorded
        once per fingerprint).
        """
        equation = str(equation)
        with self._guard:
            if program_source and fingerprint not in self._sources:
                self._sources[fingerprint] = program_source
                self._append(
                    {
                        "schema": LIBRARY_SCHEMA_VERSION,
                        "kind": "program",
                        "program": fingerprint,
                        "source": program_source,
                    }
                )
            per_theory = self._lemmas.setdefault(fingerprint, {})
            if equation in per_theory:
                return False
            per_theory[equation] = dict(certificate)
            self._append(
                {
                    "schema": LIBRARY_SCHEMA_VERSION,
                    "kind": "lemma",
                    "program": fingerprint,
                    "equation": equation,
                    "certificate": dict(certificate),
                }
            )
            # No verdict invalidation needed: verdicts are keyed by the
            # certificate's digest, so this certificate either reuses an
            # earlier identical one's verdict or misses the memo and gets
            # verified before it is first offered.
            return True

    # -- offering hints ----------------------------------------------------------

    def _certificate_digest(self, fingerprint: str, equation: str, certificate: dict) -> str:
        """The certificate's content digest (memoised per library slot)."""
        slot = (fingerprint, equation)
        with self._guard:
            digest = self._digests.get(slot)
        if digest is None:
            payload = json.dumps(certificate, sort_keys=True, separators=(",", ":"))
            digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
            with self._guard:
                self._digests[slot] = digest
        return digest

    def _verify(self, fingerprint: str, equation: str, certificate: dict, checker=None) -> bool:
        key = (fingerprint, self._certificate_digest(fingerprint, equation, certificate))
        with self._guard:
            verdict = self._verdicts.get(key)
        if verdict is not None:
            return verdict
        report = None
        try:
            if checker is not None:
                report = checker.check(certificate, goal_equation=equation)
            else:
                source = self._sources.get(fingerprint)
                if source is not None:
                    from ..proofs.checker import check_certificate

                    report = check_certificate(source, certificate, goal_equation=equation)
        except Exception:  # noqa: BLE001 - a malformed certificate must only reject
            report = None
        ok = bool(report is not None and report.ok and not report.hypotheses)
        with self._guard:
            if not ok and key not in self._verdicts:
                self.rejected += 1
            self._verdicts[key] = ok
        return ok

    def _lemma_tokens(self, fingerprint: str, equation: str) -> FrozenSet[str]:
        slot = (fingerprint, equation)
        with self._guard:
            tokens = self._tokens.get(slot)
        if tokens is None:
            tokens = equation_symbols(equation)
            with self._guard:
                self._tokens[slot] = tokens
        return tokens

    def hints_for(
        self,
        fingerprint: str,
        exclude: Iterable[str] = (),
        checker=None,
        limit: Optional[int] = None,
        goal_symbols: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """Verified lemma equations of a theory, ready to offer as hints.

        Every candidate's certificate is re-checked (memoised by certificate
        digest) before it may be returned; lemmas whose certificate fails — or
        that depend on hypotheses — are dropped and counted in
        :attr:`rejected`.  ``exclude`` removes equations (typically the goal's
        own), ``checker`` is a warm
        :class:`~repro.proofs.checker.CertificateChecker` bound to the theory
        (falling back to the library's recorded program source), and ``limit``
        caps the offer.

        When ``goal_symbols`` is given (the goal equation's function symbols)
        candidates are ranked by *relevance* — most shared symbols first,
        insertion order breaking ties — so the limit keeps the lemmas most
        likely to rewrite the goal, not merely the oldest.
        """
        excluded = set(exclude)
        with self._guard:
            candidates = list(self._lemmas.get(fingerprint, {}).items())
        if goal_symbols:
            goal_set = frozenset(goal_symbols)

            def relevance(indexed) -> Tuple[int, int]:
                index, (equation, _) = indexed
                overlap = len(self._lemma_tokens(fingerprint, equation) & goal_set)
                return (-overlap, index)

            candidates = [item for _, item in sorted(enumerate(candidates), key=relevance)]
        hints: List[str] = []
        for equation, certificate in candidates:
            if equation in excluded:
                continue
            if not self._verify(fingerprint, equation, certificate, checker=checker):
                continue
            hints.append(equation)
            if limit is not None and len(hints) >= limit:
                break
        if hints:
            self.hints_served += len(hints)
        return hints

    def verify_all(self, checker=None) -> Dict[str, int]:
        """Re-check every lemma; returns ``{"verified": n, "rejected": m}``."""
        verified = rejected = 0
        with self._guard:
            theories = {fp: dict(lemmas) for fp, lemmas in self._lemmas.items()}
        for fingerprint, lemmas in theories.items():
            for equation, certificate in lemmas.items():
                if self._verify(fingerprint, equation, certificate, checker=checker):
                    verified += 1
                else:
                    rejected += 1
        return {"verified": verified, "rejected": rejected}

    # -- views --------------------------------------------------------------------

    def lemma_count(self, fingerprint: Optional[str] = None) -> int:
        with self._guard:
            if fingerprint is not None:
                return len(self._lemmas.get(fingerprint, {}))
            return sum(len(lemmas) for lemmas in self._lemmas.values())

    def certificate_for(self, fingerprint: str, equation: str) -> Optional[dict]:
        with self._guard:
            found = self._lemmas.get(fingerprint, {}).get(str(equation))
            return dict(found) if found is not None else None

    def source_for(self, fingerprint: str) -> Optional[str]:
        return self._sources.get(fingerprint)

    def fingerprints(self) -> List[str]:
        with self._guard:
            return list(self._lemmas)

    def snapshot(self) -> Dict[str, int]:
        with self._guard:
            return {
                "lemmas": sum(len(lemmas) for lemmas in self._lemmas.values()),
                "theories": len(self._lemmas),
                "rejected": self.rejected,
                "hints_served": self.hints_served,
                "schema_skipped": self.schema_skipped,
            }

    def __len__(self) -> int:
        return self.lemma_count()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LemmaLibrary({self.path!r}: {len(self)} lemma(s))"


def enrich_library(
    source: str,
    suite: str,
    library: LemmaLibrary,
    prover_config=None,
    exploration=None,
) -> int:
    """Pre-populate the library for one theory via :class:`TheoryExplorer`.

    Runs entirely in its own :class:`~repro.core.interning.TermBank` — the
    enrichment worker may share a process with a serving daemon, and banks are
    never shared across threads.  The explorer proves its lemmas with earlier
    lemmas as hypotheses and keeps no certificates, so each surviving lemma is
    re-proved *standalone* with ``emit_proofs``; only lemmas with a
    hypothesis-free certificate enter the library.  Returns how many lemmas
    were added.
    """
    from ..core.interning import TermBank, use_bank
    from ..exploration.explorer import ExplorationConfig, TheoryExplorer
    from ..lang.loader import load_program
    from ..search.config import ProverConfig
    from ..search.prover import Prover

    base = prover_config or ProverConfig()
    exploration = exploration or ExplorationConfig()
    added = 0
    bank = TermBank()
    with use_bank(bank):
        program = load_program(source, name=suite)
        fingerprint = program.fingerprint()
        explorer = TheoryExplorer(program, config=exploration, prover_config=base)
        lemmas = explorer.explore()
        prover = Prover(
            program,
            base.with_(emit_proofs=True, timeout=exploration.lemma_timeout),
        )
        for lemma in lemmas:
            result = prover.prove(lemma)
            if result.proved and result.certificate is not None:
                if library.add(
                    fingerprint,
                    str(lemma),
                    result.certificate.to_dict(),
                    program_source=source,
                ):
                    added += 1
    return added
