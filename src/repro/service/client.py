"""Blocking JSON-lines client for the proof service.

Used by ``python -m repro submit``, the end-to-end tests, and
``benchmarks/bench_service.py``.  One connection per request: the protocol is
stateless above the daemon's own warm state, and a short-lived connection
keeps failure handling trivial (a dead daemon is a connect error, a daemon
dying mid-request is a clean :class:`ServiceProtocolError`, never a hang —
every socket operation is bounded by ``timeout``).
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["ServiceClient", "ServiceProtocolError", "SubmitOutcome"]

#: Reply ops that terminate a request (anything else is a streamed event).
_TERMINAL_OPS = ("pong", "metrics", "bye", "done", "error")


class ServiceProtocolError(RuntimeError):
    """The daemon reported an error, vanished mid-request, or spoke garbage.

    When the daemon's error line carried a trace id, it is appended to the
    message and kept on :attr:`trace`, so a client-side failure can be
    correlated with the daemon-side spans it left behind (``repro trace``).
    """

    def __init__(self, message: str, trace: str = ""):
        if trace:
            message = f"{message} [daemon trace {trace}]"
        super().__init__(message)
        self.trace = trace


@dataclass
class SubmitOutcome:
    """Everything one ``submit`` streamed back: per-goal verdicts + summary."""

    verdicts: List[dict] = field(default_factory=list)
    """The ``verdict`` lines in arrival order (certificates/counterexamples inline)."""

    done: Dict[str, object] = field(default_factory=dict)
    """The terminal ``done`` line (counts, worker spawns, latency)."""

    def verdict(self, goal: str) -> Optional[dict]:
        for entry in self.verdicts:
            if entry.get("goal") == goal:
                return entry
        return None

    @property
    def proved(self) -> int:
        return int(self.done.get("proved") or 0)

    @property
    def disproved(self) -> int:
        return int(self.done.get("disproved") or 0)

    @property
    def total(self) -> int:
        return int(self.done.get("total") or 0)

    @property
    def worker_spawns(self) -> int:
        return int(self.done.get("worker_spawns") or 0)

    @property
    def seconds(self) -> float:
        return float(self.done.get("seconds") or 0.0)

    @property
    def all_proved(self) -> bool:
        return self.total > 0 and self.proved == self.total

    @property
    def trace(self) -> str:
        """The daemon's trace id for this request ("" from pre-trace daemons)."""
        return str(self.done.get("trace") or "")


class ServiceClient:
    """Talk to a running daemon over its unix socket.

    ``timeout`` bounds every *read* (how long a request may take end to end
    per reply line); ``connect_timeout`` bounds the connect itself.  A daemon
    that is still starting up — socket file not yet bound, or bound but the
    listener not yet accepting — shows up as ``ECONNREFUSED``/``ENOENT`` on
    connect; those are retried up to ``connect_retries`` times with
    ``connect_backoff`` seconds between attempts before surfacing a clean
    :class:`ServiceProtocolError`.  Nothing here can hang: every socket
    operation carries a deadline.
    """

    def __init__(
        self,
        socket_path: str,
        timeout: float = 120.0,
        connect_timeout: float = 5.0,
        connect_retries: int = 5,
        connect_backoff: float = 0.1,
        client: Optional[str] = None,
    ):
        self.socket_path = str(socket_path)
        self.timeout = float(timeout)
        self.connect_timeout = float(connect_timeout)
        self.connect_retries = max(0, int(connect_retries))
        self.connect_backoff = max(0.0, float(connect_backoff))
        #: Client identity stamped on submits (fair scheduling and budgets on
        #: the daemon side are per client).  ``None`` lets the daemon default.
        self.client = client

    # -- transport ----------------------------------------------------------------

    def _connect(self) -> socket.socket:
        """A connected socket, retrying the just-starting-daemon race."""
        last_error: Optional[OSError] = None
        for attempt in range(self.connect_retries + 1):
            if attempt:
                time.sleep(self.connect_backoff)
            connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            connection.settimeout(self.connect_timeout)
            try:
                connection.connect(self.socket_path)
            except (ConnectionRefusedError, FileNotFoundError) as error:
                # Daemon starting (or gone): retry within the bound.
                connection.close()
                last_error = error
                continue
            except OSError as error:
                connection.close()
                raise ServiceProtocolError(
                    f"cannot reach daemon on {self.socket_path}: {error}"
                ) from None
            connection.settimeout(self.timeout)
            return connection
        raise ServiceProtocolError(
            f"cannot reach daemon on {self.socket_path} after "
            f"{self.connect_retries + 1} attempt(s): {last_error}"
        ) from None

    def _request(
        self, payload: dict, on_event: Optional[Callable[[dict], None]] = None
    ) -> Tuple[dict, List[dict]]:
        """Send one request; returns ``(terminal reply, streamed events)``.

        Raises :class:`ServiceProtocolError` on an ``error`` reply and on a
        connection that closes before a terminal reply arrives (the killed-
        worker / dying-daemon path — a clean client error, never a hang).
        """
        events: List[dict] = []
        connection = self._connect()
        try:
            connection.sendall((json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))
            stream = connection.makefile("r", encoding="utf-8")
            try:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        reply = json.loads(line)
                    except ValueError:
                        raise ServiceProtocolError(f"daemon sent a non-JSON line: {line[:120]!r}")
                    if not isinstance(reply, dict):
                        raise ServiceProtocolError(f"daemon sent a non-object reply: {line[:120]!r}")
                    if reply.get("op") == "error":
                        raise ServiceProtocolError(
                            str(reply.get("error") or "unknown service error"),
                            trace=str(reply.get("trace") or ""),
                        )
                    if reply.get("op") in _TERMINAL_OPS:
                        return reply, events
                    events.append(reply)
                    if on_event is not None:
                        on_event(reply)
            finally:
                stream.close()
        except socket.timeout:
            raise ServiceProtocolError(
                f"daemon did not answer within {self.timeout:.0f}s"
            ) from None
        finally:
            connection.close()
        raise ServiceProtocolError("daemon closed the connection before finishing the request")

    # -- the protocol ops ----------------------------------------------------------

    def ping(self) -> dict:
        reply, _ = self._request({"op": "ping"})
        return reply

    def metrics(self) -> dict:
        """The daemon's metrics snapshot (feed :func:`service_summary_table`)."""
        reply, _ = self._request({"op": "metrics"})
        metrics = reply.get("metrics")
        return metrics if isinstance(metrics, dict) else {}

    def shutdown(self) -> dict:
        reply, _ = self._request({"op": "shutdown"})
        return reply

    def submit(
        self,
        suite: Optional[str] = None,
        source: Optional[str] = None,
        goals: Sequence[str] = (),
        conjectures: Sequence[Tuple[str, str]] = (),
        timeout: Optional[float] = None,
        use_hints: bool = True,
        falsify: bool = False,
        on_verdict: Optional[Callable[[dict], None]] = None,
        client: Optional[str] = None,
    ) -> SubmitOutcome:
        """Submit goals; blocks until the daemon's ``done`` line.

        Exactly one of ``suite`` (a built-in theory) or ``source`` (program
        text) selects the theory; ``goals`` filters its declared goals and
        ``conjectures`` adds ``(name, equation source)`` pairs on top.
        ``on_verdict`` sees each verdict as it streams in.  ``client``
        (defaulting to the instance-level identity) names the session for the
        daemon's fair scheduler and per-client budgets.
        """
        request: Dict[str, object] = {"op": "submit"}
        identity = client if client is not None else self.client
        if identity is not None:
            request["client"] = str(identity)
        if source is not None:
            request["source"] = source
        if suite is not None:
            request["suite"] = suite
        if goals:
            request["goals"] = [str(name) for name in goals]
        if conjectures:
            request["conjectures"] = [
                {"name": str(name), "equation": str(equation)}
                for name, equation in conjectures
            ]
        if timeout is not None:
            request["timeout"] = float(timeout)
        if not use_hints:
            request["use_hints"] = False
        if falsify:
            request["falsify"] = True
        done, events = self._request(request, on_event=on_verdict)
        return SubmitOutcome(verdicts=events, done=done)
