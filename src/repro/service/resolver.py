"""Worker-side problem resolution for service submissions.

The engine's workers rebuild their problems from a *resolver* so that terms
never cross the process boundary.  Built-in suites use the
``"module:attribute"`` registry specs; a submission carrying arbitrary program
source needs a resolver that ships the *source text* instead —
:class:`SourceResolver` is that: a picklable callable holding only primitives
(source, suite name, extra goal equations), elaborating the program inside
whichever process invokes it.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["SourceResolver"]


class SourceResolver:
    """Resolve problems by elaborating submitted program source in-process.

    Instances cross the fork/spawn boundary as plain picklable data; the
    elaboration (and hence every term) happens inside the worker, in the
    worker's own bank.  ``extra_goals`` are ``(name, equation source)`` pairs
    appended to the program's declared goals — the service uses them for
    conjectures submitted alongside a known theory.
    """

    def __init__(
        self,
        source: str,
        suite: str,
        extra_goals: Iterable[Tuple[str, str]] = (),
    ):
        self.source = str(source)
        self.suite = str(suite)
        self.extra_goals: Sequence[Tuple[str, str]] = tuple(
            (str(name), str(equation)) for name, equation in extra_goals
        )

    def __call__(self) -> List[object]:
        # Deferred imports: the resolver is constructed in the parent but
        # *runs* in the worker, which should pay the import cost lazily.
        from ..benchmarks_data.registry import BenchmarkProblem
        from ..lang.loader import load_program
        from ..program import Goal

        program = load_program(self.source, name=self.suite)
        problems = [
            BenchmarkProblem(name=name, suite=self.suite, goal=goal, program=program)
            for name, goal in program.goals.items()
        ]
        for name, equation_source in self.extra_goals:
            equation = program.parse_equation(equation_source)
            problems.append(
                BenchmarkProblem(
                    name=name,
                    suite=self.suite,
                    goal=Goal(name=name, equation=equation),
                    program=program,
                )
            )
        return problems

    # -- the pool worker's theory-cache protocol --------------------------------
    #
    # A shared pool worker outlives any one request, so it caches elaborated
    # theories by `base_key` — theory identity *without* the per-request
    # conjectures, which would otherwise fragment the cache — and parses each
    # request's conjectures on demand via `problem_for`.

    @property
    def base_key(self) -> str:
        """Cache identity of the theory: the source text and suite name only."""
        digest = hashlib.sha256()
        digest.update(self.suite.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.source.encode("utf-8"))
        return digest.hexdigest()

    def elaborate(self) -> Tuple[object, Dict[str, object]]:
        """Elaborate the base theory: ``(program, {"suite/name": problem})``.

        Declared goals only — conjectures are per-request and parsed later
        through :meth:`problem_for` against the returned program, so one
        request's conjecture set never pollutes the cached theory.
        """
        from ..benchmarks_data.registry import BenchmarkProblem
        from ..lang.loader import load_program

        program = load_program(self.source, name=self.suite)
        problems = {
            f"{self.suite}/{name}": BenchmarkProblem(
                name=name, suite=self.suite, goal=goal, program=program
            )
            for name, goal in program.goals.items()
        }
        return program, problems

    def problem_for(self, program, name: str, equation_source: str):
        """A conjecture problem parsed against an already-elaborated program."""
        from ..benchmarks_data.registry import BenchmarkProblem
        from ..program import Goal

        equation = program.parse_equation(equation_source)
        return BenchmarkProblem(
            name=name,
            suite=self.suite,
            goal=Goal(name=name, equation=equation),
            program=program,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SourceResolver(suite={self.suite!r}, {len(self.source)} source bytes, "
            f"{len(self.extra_goals)} extra goal(s))"
        )
