"""Warm per-theory state: everything worth keeping resident between requests.

One :class:`WarmState` bundles what a cold request must otherwise rebuild —
the elaborated :class:`~repro.program.Program` in its own private
:class:`~repro.core.interning.TermBank`, the compiled rewrite system behind a
ready :class:`~repro.rewriting.reduction.Normalizer`, the compiled ground
:class:`~repro.semantics.evaluator.Evaluator`, a
:class:`~repro.proofs.checker.CertificateChecker` bound to the program, and
the per-goal :class:`~repro.benchmarks_data.registry.BenchmarkProblem` views.
A :class:`WarmStateCache` keeps a bounded number of these alive, LRU-evicted,
keyed by the *source text* digest (two submissions of byte-identical source
share one entry; the content-addressed ``Program.fingerprint()`` is computed
once and exposed for store/library keying).

Invariant: the terms inside a warm state never leave it.  Requests receive
verdicts, certificates, and counterexamples — primitive data — and workers
re-elaborate from source in their own banks.  The bank here exists so the
*parent* side (store-key rendering, hint parsing, certificate verification,
ground falsification) is warm, not so terms can be shared.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

__all__ = ["WarmState", "WarmStateCache"]


class WarmState:
    """The resident artifacts of one theory (one program source text)."""

    def __init__(self, source: str, suite: str):
        from ..benchmarks_data.registry import BenchmarkProblem
        from ..core.interning import TermBank, use_bank
        from ..lang.loader import load_program
        from ..proofs.checker import CertificateChecker
        from ..rewriting.compile import CompiledRewriteSystem
        from ..rewriting.reduction import Normalizer
        from ..semantics.evaluator import CompilationError, Evaluator

        self.source = source
        self.suite = suite
        self.built_at = time.monotonic()
        #: Serialises bank-touching parent-side work (parsing conjectures or
        #: hints into the warm bank, certificate checks through the warm
        #: checker) across concurrent request threads.  The bank's intern
        #: tables are plain dicts — two threads racing a miss on the same
        #: node would each create one, breaking identity-equality.
        self.guard = threading.RLock()
        #: Private bank: the warm program's terms never mix with the ambient
        #: bank of whoever drives the service (or with another theory's).
        self.bank = TermBank()
        with use_bank(self.bank):
            self.program = load_program(source, name=suite)
            self.fingerprint = self.program.fingerprint()
            #: Ready normaliser with the per-symbol match trees already built;
            #: parsing/normalising on the parent side (hints, store keys) pays
            #: zero compile time on repeat requests.
            self.normalizer = Normalizer(self.program.rules)
            self.compiled = CompiledRewriteSystem.for_system(self.program.rules, self.bank)
            #: Compiled ground evaluator (cached *on the program*, so any
            #: falsification against this warm program reuses it); ``None``
            #: when the program is outside the compilable fragment.
            try:
                self.evaluator: Optional[Evaluator] = Evaluator.for_program(self.program)
            except CompilationError:
                self.evaluator = None
        #: Checker bound to the warm program: library lemmas are verified
        #: against it without re-elaborating the source per lemma.  (It
        #: decodes certificates into throwaway banks of its own.)
        self.checker = CertificateChecker(self.program, name=suite)
        self.problems: Dict[str, BenchmarkProblem] = {
            name: BenchmarkProblem(name=name, suite=suite, goal=goal, program=self.program)
            for name, goal in self.program.goals.items()
        }
        #: Goals submitted with requests (name -> problem), parsed lazily into
        #: the warm bank; kept so a repeat submission of the same conjecture
        #: reuses the parsed form.
        self.extra_problems: Dict[str, Tuple[str, object]] = {}

    def problem_for(self, name: str, equation_source: Optional[str] = None):
        """The problem view of a goal, adding ``equation_source`` if unknown.

        Raises ``KeyError`` for an unknown name without an equation, and
        ``repro.core.exceptions.CycleQError`` (or subclasses) for an equation
        that does not parse against this theory.
        """
        from ..benchmarks_data.registry import BenchmarkProblem
        from ..core.interning import use_bank
        from ..program import Goal

        if equation_source is None:
            return self.problems[name]
        with self.guard:
            cached = self.extra_problems.get(name)
            if cached is not None and cached[0] == equation_source:
                return cached[1]
            with use_bank(self.bank):
                equation = self.program.parse_equation(equation_source)
            problem = BenchmarkProblem(
                name=name, suite=self.suite, goal=Goal(name=name, equation=equation),
                program=self.program,
            )
            self.extra_problems[name] = (equation_source, problem)
            return problem

    def goal_names(self) -> List[str]:
        return list(self.problems)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WarmState({self.suite!r}, fingerprint {self.fingerprint[:12]}…, "
            f"{len(self.problems)} goal(s), evaluator={'yes' if self.evaluator else 'no'})"
        )


class WarmStateCache:
    """Bounded LRU cache of :class:`WarmState`, keyed by source-text digest."""

    def __init__(self, capacity: int = 8):
        self.capacity = max(1, int(capacity))
        self._states: "OrderedDict[str, WarmState]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.RLock()
        #: Per-source build locks: two concurrent requests for the same new
        #: theory build it once (the loser waits, then hits), while requests
        #: for *different* theories build in parallel.
        self._building: Dict[str, threading.Lock] = {}

    @staticmethod
    def source_key(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def get(self, source: str, suite: str) -> Tuple[WarmState, bool]:
        """The warm state for ``source``, building it on a miss.

        Returns ``(state, was_warm)``; a build error (source that does not
        elaborate) propagates to the caller and caches nothing.  Thread-safe:
        concurrent misses on one source serialise on a per-source build lock,
        so the expensive elaboration happens exactly once.
        """
        key = self.source_key(source)
        with self._lock:
            state = self._states.get(key)
            if state is not None:
                self.hits += 1
                self._states.move_to_end(key)
                return state, True
            build_lock = self._building.setdefault(key, threading.Lock())
        with build_lock:
            with self._lock:
                state = self._states.get(key)
                if state is not None:
                    # Lost the build race: the winner's state counts as warm.
                    self.hits += 1
                    self._states.move_to_end(key)
                    return state, True
            state = WarmState(source, suite)
            with self._lock:
                self.misses += 1
                self._states[key] = state
                self._building.pop(key, None)
                while len(self._states) > self.capacity:
                    self._states.popitem(last=False)
                    self.evictions += 1
        return state, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._states)

    def __contains__(self, source: str) -> bool:
        with self._lock:
            return self.source_key(source) in self._states

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._states),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
