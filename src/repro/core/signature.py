"""Signatures: datatypes, constructors and defined function symbols.

The paper fixes a signature consisting of a finite set of algebraic datatypes
``D`` and function symbols ``Sigma`` partitioned into constructors (at most
first order) and defined functions.  :class:`Signature` records exactly this
information plus the (possibly polymorphic) type of every symbol, and provides
the type-driven operations the prover needs:

* enumerate the constructors of a datatype with their argument types
  instantiated at a particular type application (used by the (Case) rule);
* infer the type of a term (used by reflexivity over function types, the
  function-extensionality rule, and well-formedness checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .exceptions import SignatureError, TypeCheckError, UnificationError
from .terms import App, Sym, Term, Var
from .types import (
    DataTy,
    FunTy,
    Type,
    TypeVar,
    apply_type_subst,
    arg_types,
    fun_ty,
    instantiate,
    match_type,
    resolve,
    result_type,
    type_order,
    unify_types,
)

__all__ = ["ConstructorDecl", "DataDecl", "Signature"]


@dataclass(frozen=True)
class ConstructorDecl:
    """A constructor declaration: its name and argument types.

    The argument types may mention the type parameters of the owning datatype.
    """

    name: str
    arg_types: Tuple[Type, ...]


@dataclass(frozen=True)
class DataDecl:
    """An algebraic datatype declaration, e.g. ``data List a = Nil | Cons a (List a)``."""

    name: str
    params: Tuple[str, ...]
    constructors: Tuple[ConstructorDecl, ...]

    def applied(self, args: Optional[Sequence[Type]] = None) -> DataTy:
        """The datatype applied to ``args`` (type variables by default)."""
        if args is None:
            args = tuple(TypeVar(p) for p in self.params)
        return DataTy(self.name, tuple(args))

    def __str__(self) -> str:
        params = (" " + " ".join(self.params)) if self.params else ""
        cons = " | ".join(
            c.name + "".join(f" ({t})" for t in c.arg_types) for c in self.constructors
        )
        return f"data {self.name}{params} = {cons}"


class Signature:
    """The signature of a program: datatypes, constructors and defined symbols."""

    def __init__(self) -> None:
        self._datatypes: Dict[str, DataDecl] = {}
        self._constructor_owner: Dict[str, str] = {}
        self._constructor_types: Dict[str, Type] = {}
        self._defined_types: Dict[str, Type] = {}

    # -- declaration --------------------------------------------------------

    def declare_datatype(self, decl: DataDecl) -> None:
        """Register a datatype and its constructors."""
        if decl.name in self._datatypes:
            raise SignatureError(f"datatype {decl.name} declared twice")
        self._datatypes[decl.name] = decl
        for con in decl.constructors:
            if con.name in self._constructor_owner or con.name in self._defined_types:
                raise SignatureError(f"symbol {con.name} declared twice")
            for ty in con.arg_types:
                if type_order(ty) > 1:
                    raise SignatureError(
                        f"constructor {con.name} has an argument of order > 1: {ty}"
                    )
            self._constructor_owner[con.name] = decl.name
            self._constructor_types[con.name] = fun_ty(con.arg_types, decl.applied())

    def datatype(self, name: str, params: Sequence[str] = (),
                 constructors: Sequence[Tuple[str, Sequence[Type]]] = ()) -> DataDecl:
        """Convenience wrapper building and declaring a :class:`DataDecl`."""
        decl = DataDecl(
            name,
            tuple(params),
            tuple(ConstructorDecl(n, tuple(ts)) for n, ts in constructors),
        )
        self.declare_datatype(decl)
        return decl

    def declare_function(self, name: str, ty: Type) -> None:
        """Register a defined function symbol with its (possibly polymorphic) type."""
        if name in self._defined_types or name in self._constructor_owner:
            raise SignatureError(f"symbol {name} declared twice")
        self._defined_types[name] = ty

    # -- queries -------------------------------------------------------------

    @property
    def datatypes(self) -> Mapping[str, DataDecl]:
        """All datatype declarations, keyed by name."""
        return dict(self._datatypes)

    @property
    def constructors(self) -> Tuple[str, ...]:
        """The names of all constructors."""
        return tuple(self._constructor_types)

    @property
    def defined(self) -> Tuple[str, ...]:
        """The names of all defined function symbols."""
        return tuple(self._defined_types)

    def is_constructor(self, name: str) -> bool:
        """Is ``name`` a constructor of some declared datatype?"""
        return name in self._constructor_types

    def is_defined(self, name: str) -> bool:
        """Is ``name`` a defined function symbol?"""
        return name in self._defined_types

    def is_declared(self, name: str) -> bool:
        """Is ``name`` either a constructor or a defined function?"""
        return self.is_constructor(name) or self.is_defined(name)

    def symbol_type(self, name: str) -> Type:
        """The declared (polymorphic) type of a symbol."""
        if name in self._constructor_types:
            return self._constructor_types[name]
        if name in self._defined_types:
            return self._defined_types[name]
        raise SignatureError(f"unknown symbol {name}")

    def arity(self, name: str) -> int:
        """The number of arguments of a symbol according to its declared type."""
        return len(arg_types(self.symbol_type(name)))

    def owner_datatype(self, constructor: str) -> str:
        """The datatype a constructor belongs to."""
        try:
            return self._constructor_owner[constructor]
        except KeyError:
            raise SignatureError(f"unknown constructor {constructor}") from None

    def constructors_of(self, datatype: str) -> Tuple[ConstructorDecl, ...]:
        """The constructor declarations of a datatype (paper's Sigma_con(d))."""
        try:
            return self._datatypes[datatype].constructors
        except KeyError:
            raise SignatureError(f"unknown datatype {datatype}") from None

    def instantiate_constructors(self, ty: DataTy) -> List[Tuple[str, Tuple[Type, ...]]]:
        """Constructors of the datatype ``ty`` with argument types instantiated at ``ty``.

        For example, for ``List Nat`` this returns
        ``[("Nil", ()), ("Cons", (Nat, List Nat))]``.
        """
        if not isinstance(ty, DataTy):
            raise TypeCheckError(f"cannot case split on non-datatype type {ty}")
        decl = self._datatypes.get(ty.name)
        if decl is None:
            raise SignatureError(f"unknown datatype {ty.name}")
        if len(decl.params) != len(ty.args):
            raise TypeCheckError(f"datatype {ty.name} applied to wrong number of arguments")
        mapping = {param: arg for param, arg in zip(decl.params, ty.args)}
        result = []
        for con in decl.constructors:
            inst = tuple(apply_type_subst(mapping, t) for t in con.arg_types)
            result.append((con.name, inst))
        return result

    # -- typing --------------------------------------------------------------

    def infer_type(self, term: Term) -> Type:
        """Infer the (most general) type of a well-formed term.

        Variables carry their own types; symbol occurrences are instantiated
        with fresh type variables and constrained by application.  Raises
        :class:`TypeCheckError` when the term is ill-typed.
        """
        subst: Dict[str, Type] = {}

        counter = [0]

        def fresh() -> TypeVar:
            counter[0] += 1
            return TypeVar(f"$i{counter[0]}")

        def go(t: Term) -> Type:
            if isinstance(t, Var):
                return t.ty
            if isinstance(t, Sym):
                return instantiate(self.symbol_type(t.name))
            if isinstance(t, App):
                fun_type = go(t.fun)
                arg_type = go(t.arg)
                res = fresh()
                try:
                    unify_types(fun_type, FunTy(arg_type, res), subst)
                except UnificationError as exc:
                    raise TypeCheckError(f"ill-typed application {t}: {exc}") from exc
                return res
            raise TypeCheckError(f"unknown term node {t!r}")

        return resolve(go(term), subst)

    def check_type(self, term: Term, expected: Type) -> Type:
        """Check that ``term`` can be given the type ``expected``."""
        inferred = self.infer_type(term)
        try:
            subst = unify_types(inferred, expected, {})
        except UnificationError as exc:
            raise TypeCheckError(
                f"term {term} has type {inferred}, expected {expected}"
            ) from exc
        return resolve(expected, subst)

    # -- misc ----------------------------------------------------------------

    def describe(self) -> str:
        """A human-readable summary of the signature."""
        lines = [str(decl) for decl in self._datatypes.values()]
        for name, ty in self._defined_types.items():
            lines.append(f"{name} :: {ty}")
        return "\n".join(lines)

    def __contains__(self, name: str) -> bool:
        return self.is_declared(name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Signature(datatypes={list(self._datatypes)}, "
            f"defined={list(self._defined_types)})"
        )
