"""Pre-optimisation reference implementations of matching and substitution.

Counterparts to :mod:`repro.sizechange.reference` for the term layer: the
profile-guided optimisation pass added a single-binding fast path to
:meth:`Substitution.apply` and re-worked the binding environment of
:func:`match_or_none`; these are the implementations as they stood before,
kept runnable for the differential property tests
(``tests/test_hot_path_parity.py``) and for the end-to-end baseline of
``benchmarks/bench_hot_loop.py`` (via :func:`repro.perf.reference_hot_paths`).

Nothing in the prover imports this module.
"""

from __future__ import annotations

from typing import Dict, Optional

from .substitution import Substitution
from .terms import App, Sym, Term, Var

__all__ = ["reference_match_or_none", "reference_apply"]


def reference_match_or_none(
    pattern: Term, target: Term, subst: Optional[Dict[str, Term]] = None
) -> Optional[Substitution]:
    """``match_or_none`` as it stood before the optimisation pass."""
    bindings: Dict[str, Term] = dict(subst) if subst else {}
    stack = [(pattern, target)]
    while stack:
        pat, tgt = stack.pop()
        cls = pat.__class__
        if cls is Var:
            bound = bindings.get(pat.name)
            if bound is None:
                bindings[pat.name] = tgt
            elif bound is not tgt and bound != tgt:
                return None
        elif cls is Sym:
            if pat is not tgt and (tgt.__class__ is not Sym or pat.name != tgt.name):
                return None
        elif cls is App:
            if tgt.__class__ is not App:
                return None
            pat_head = pat._head
            if pat_head is not None and (
                pat_head != tgt._head or pat._nargs != tgt._nargs
            ):
                return None
            if not pat._fvs:
                if pat is tgt or pat == tgt:
                    continue
                return None
            stack.append((pat.fun, tgt.fun))
            stack.append((pat.arg, tgt.arg))
        else:  # pragma: no cover - defensive
            return None
    return Substitution(bindings)


def reference_apply(subst: Substitution, term: Term) -> Term:
    """``Substitution.apply`` as it stood before the optimisation pass."""
    mapping = subst._mapping
    if not mapping or not term._fvs:
        return term
    if all(v.name not in mapping for v in term._fvs):
        return term
    if term._size <= 128:
        return _reference_apply_small(term, mapping)
    memo: Dict[int, Term] = {}
    stack = [term]
    while stack:
        t = stack[-1]
        ident = id(t)
        if ident in memo:
            stack.pop()
            continue
        if isinstance(t, Var):
            stack.pop()
            memo[ident] = mapping.get(t.name, t)
        elif isinstance(t, App):
            if not t._fvs:
                stack.pop()
                memo[ident] = t
                continue
            fun, arg = t.fun, t.arg
            pending = False
            if id(fun) not in memo:
                stack.append(fun)
                pending = True
            if id(arg) not in memo:
                stack.append(arg)
                pending = True
            if pending:
                continue
            stack.pop()
            new_fun, new_arg = memo[id(fun)], memo[id(arg)]
            memo[ident] = (
                t if (new_fun is fun and new_arg is arg) else App(new_fun, new_arg)
            )
        else:
            stack.pop()
            memo[ident] = t
    return memo[id(term)]


def _reference_apply_small(term: Term, mapping: Dict[str, Term]) -> Term:
    if isinstance(term, Var):
        return mapping.get(term.name, term)
    if isinstance(term, App):
        if not term._fvs:
            return term
        fun = _reference_apply_small(term.fun, mapping)
        arg = _reference_apply_small(term.arg, mapping)
        if fun is term.fun and arg is term.arg:
            return term
        return App(fun, arg)
    return term
