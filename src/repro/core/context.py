"""One-hole contexts (paper, Section 2).

Contexts are defined by::

    C[.] ::= . | C[.] M | M C[.]

A context is represented as a term over an extended syntax containing a single
:class:`Hole`; filling the hole yields an ordinary term.  The module realises
the operations used in the paper: composition ``C ∘ D``, the prefix order on
contexts (Lemma 2.2) and the derived subterm order (Lemma 2.1), as well as the
bridge to the position-based view of :mod:`repro.core.terms` used by the prover
for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from .exceptions import CycleQError
from .terms import App, Position, Term, positions, replace_at, subterm_at

__all__ = [
    "Hole",
    "Context",
    "hole",
    "context_at",
    "decompositions",
    "compose",
    "is_prefix",
]


@dataclass(frozen=True)
class Hole:
    """The unique hole ``[.]`` of a one-hole context."""

    __slots__ = ()

    def __str__(self) -> str:
        return "[.]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "[.]"


class Context:
    """A one-hole context.

    The context is stored as the skeleton term (with a :class:`Hole` where the
    hole sits) together with the position of that hole.  Use :meth:`fill` to
    plug a term into the hole and :meth:`compose` for ``C ∘ D``.
    """

    __slots__ = ("skeleton", "position")

    def __init__(self, skeleton, position: Position):
        self.skeleton = skeleton
        self.position = position

    # -- construction ------------------------------------------------------

    @staticmethod
    def trivial() -> "Context":
        """The trivial context ``[.]``."""
        return Context(Hole(), ())

    @staticmethod
    def of_position(term: Term, position: Position) -> "Context":
        """The context obtained by removing the subterm of ``term`` at ``position``."""
        skeleton = replace_at(term, position, Hole()) if position else Hole()
        return Context(skeleton, position)

    # -- operations --------------------------------------------------------

    @property
    def is_trivial(self) -> bool:
        """Is this the trivial context ``[.]``?"""
        return isinstance(self.skeleton, Hole)

    def fill(self, term: Term) -> Term:
        """Fill the hole with ``term``, producing a term ``C[term]``."""
        return _fill(self.skeleton, term)

    def compose(self, other: "Context") -> "Context":
        """The composition ``self ∘ other`` with ``(C ∘ D)[X] = C[D[X]]``."""
        skeleton = _fill(self.skeleton, other.skeleton)
        return Context(skeleton, self.position + other.position)

    # -- comparisons --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Context):
            return NotImplemented
        return self.skeleton == other.skeleton

    def __hash__(self) -> int:
        return hash(("Context", self.skeleton))

    def __str__(self) -> str:
        return _render(self.skeleton)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Context({self})"


def _fill(skeleton, term):
    if isinstance(skeleton, Hole):
        return term
    if isinstance(skeleton, App):
        return App(_fill(skeleton.fun, term), _fill(skeleton.arg, term))
    return skeleton


def _render(skeleton) -> str:
    if isinstance(skeleton, Hole):
        return "[.]"
    if isinstance(skeleton, App):
        return f"({_render(skeleton.fun)} {_render(skeleton.arg)})"
    return str(skeleton)


def hole() -> Context:
    """The trivial context ``[.]`` (a convenience alias)."""
    return Context.trivial()


def context_at(term: Term, position: Position) -> Tuple[Context, Term]:
    """Split ``term`` into the context around ``position`` and the subterm there."""
    sub = subterm_at(term, position)
    return Context.of_position(term, position), sub


def decompositions(term: Term) -> Iterator[Tuple[Context, Term]]:
    """Yield every decomposition ``term = C[M]`` as a ``(C, M)`` pair."""
    for position, sub in positions(term):
        yield Context.of_position(term, position), sub


def compose(outer: Context, inner: Context) -> Context:
    """Functional form of :meth:`Context.compose`."""
    return outer.compose(inner)


def is_prefix(smaller: Context, bigger: Context) -> bool:
    """The prefix order on contexts ``D ⊑ C`` of Lemma 2.2.

    ``D ⊑ C`` holds when there is a context ``E`` with ``C = D ∘ E``, i.e. the
    hole of ``C`` lies underneath the hole of ``D``.
    """
    witness = _strip(bigger.skeleton, smaller.skeleton)
    return witness is not None


def _strip(big, small) -> Optional[object]:
    """If ``big = small ∘ E`` for some context skeleton ``E``, return ``E``."""
    if isinstance(small, Hole):
        return big
    if isinstance(small, App) and isinstance(big, App):
        left = _pair_strip(big.fun, small.fun, big.arg, small.arg)
        return left
    if small == big:
        # Both are identical hole-free terms: no hole below, not a context.
        return None
    return None


def _pair_strip(big_fun, small_fun, big_arg, small_arg) -> Optional[object]:
    # Exactly one of the two components of the smaller context contains a hole.
    if _contains_hole(small_fun):
        if big_arg != small_arg:
            return None
        return _strip(big_fun, small_fun)
    if _contains_hole(small_arg):
        if big_fun != small_fun:
            return None
        return _strip(big_arg, small_arg)
    return None


def _contains_hole(skeleton) -> bool:
    if isinstance(skeleton, Hole):
        return True
    if isinstance(skeleton, App):
        return _contains_hole(skeleton.fun) or _contains_hole(skeleton.arg)
    return False
