"""Unordered equations between terms.

An equation ``M ≈ N`` is an *unordered* pair of terms of the same datatype
(paper, Section 2): the left- and right-hand sides are interchangeable, which
is what gives the proof system symmetry for free.  Equality and hashing of
:class:`Equation` are therefore symmetric.

Validity is defined semantically: a ground instance ``alpha`` satisfies
``M ≈ N`` when the normal forms of ``M alpha`` and ``N alpha`` coincide.  The
functions here take the normalisation function as a parameter so that this
module does not depend on the rewriting package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Optional, Sequence, Tuple

from .substitution import Substitution
from .terms import Term, Var, free_vars

__all__ = ["Equation", "satisfied_by", "holds_on_instances"]

NormalForm = Callable[[Term], Term]


@dataclass(frozen=True)
class Equation:
    """An unordered equation between two terms of the same datatype."""

    lhs: Term
    rhs: Term

    __slots__ = ("lhs", "rhs")

    # -- unordered identity ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Equation):
            return NotImplemented
        return (self.lhs == other.lhs and self.rhs == other.rhs) or (
            self.lhs == other.rhs and self.rhs == other.lhs
        )

    def __hash__(self) -> int:
        return hash(self.lhs) ^ hash(self.rhs)

    def __str__(self) -> str:
        return f"{self.lhs} ≈ {self.rhs}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Equation({self.lhs!r}, {self.rhs!r})"

    # -- views ----------------------------------------------------------------

    @property
    def sides(self) -> Tuple[Term, Term]:
        """The two sides as a tuple (in stored order)."""
        return (self.lhs, self.rhs)

    def flipped(self) -> "Equation":
        """The same equation with the sides swapped (equal to ``self``)."""
        return Equation(self.rhs, self.lhs)

    def variables(self) -> Tuple[Var, ...]:
        """The free variables of both sides, left side first, no duplicates."""
        seen: Dict[Var, None] = {}
        for side in self.sides:
            for var in free_vars(side):
                seen.setdefault(var, None)
        return tuple(seen)

    def variable_names(self) -> Tuple[str, ...]:
        """The names of the free variables of the equation."""
        return tuple(v.name for v in self.variables())

    def is_trivial(self) -> bool:
        """Is the equation of the form ``M ≈ M``?"""
        return self.lhs == self.rhs

    # -- transformations -------------------------------------------------------

    def apply(self, subst: Substitution) -> "Equation":
        """Apply a substitution to both sides."""
        return Equation(subst.apply(self.lhs), subst.apply(self.rhs))

    def map_sides(self, f: Callable[[Term], Term]) -> "Equation":
        """Apply ``f`` to both sides."""
        return Equation(f(self.lhs), f(self.rhs))


def satisfied_by(equation: Equation, instance: Substitution, normalize: NormalForm) -> bool:
    """Does the (ground) instance satisfy the equation? (paper: ``alpha ⊨ M ≈ N``)."""
    closed = equation.apply(instance)
    return normalize(closed.lhs) == normalize(closed.rhs)


def holds_on_instances(
    equation: Equation,
    instances: Iterable[Substitution],
    normalize: NormalForm,
) -> bool:
    """Is the equation satisfied by every instance of the given collection?

    This is the testable approximation of validity used throughout the test
    suite: validity proper quantifies over *all* ground instances, which is not
    enumerable, so callers supply a finite family (e.g. all ground constructor
    terms up to a size bound).
    """
    return all(satisfied_by(equation, instance, normalize) for instance in instances)
