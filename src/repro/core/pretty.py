"""Pretty-printing of terms, types, equations and substitutions.

The renderer produces the familiar applicative syntax used in the paper:
``add (S x) y`` rather than ``((add (S x)) y)``.  It is deliberately simple —
terms contain no binders — and is shared by ``__str__`` implementations and the
proof renderer.
"""

from __future__ import annotations

from typing import Optional

from .types import Type

__all__ = ["pretty_term", "pretty_equation", "pretty_subst", "pretty_type"]


def pretty_term(term) -> str:
    """Render a term with minimal parentheses."""
    from .terms import App, Sym, Var, spine

    if isinstance(term, (Var, Sym)):
        return term.name
    if isinstance(term, App):
        head, args = spine(term)
        parts = [_atomic(head)] + [_atomic(arg) for arg in args]
        return " ".join(parts)
    # Context holes and other extended nodes render via their own __str__.
    return str(term)


def _atomic(term) -> str:
    """Render a term, parenthesising applications."""
    from .terms import App

    text = pretty_term(term)
    if isinstance(term, App):
        return f"({text})"
    return text


def pretty_equation(equation, env: Optional[dict] = None) -> str:
    """Render an equation, optionally with its typing environment."""
    body = f"{pretty_term(equation.lhs)} ≈ {pretty_term(equation.rhs)}"
    if env:
        context = ", ".join(f"{name} : {ty}" for name, ty in env.items())
        return f"{context} ⊢ {body}"
    return body


def pretty_subst(subst) -> str:
    """Render a substitution as ``{x -> t, ...}``."""
    items = ", ".join(f"{name} -> {pretty_term(term)}" for name, term in sorted(subst.items()))
    return "{" + items + "}"


def pretty_type(ty: Type) -> str:
    """Render a type (delegates to the type's ``__str__``)."""
    return str(ty)
