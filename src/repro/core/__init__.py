"""Core term-language substrate: types, terms, contexts, substitutions, equations."""

from .context import Context, Hole, context_at, decompositions
from .equations import Equation, holds_on_instances, satisfied_by
from .exceptions import (
    CycleQError,
    ElaborationError,
    GlobalConditionError,
    MatchError,
    ParseError,
    ProofError,
    RewriteError,
    SearchError,
    SignatureError,
    TypeCheckError,
    UnificationError,
)
from .interning import TermBank, current_bank, set_current_bank, use_bank
from .matching import alpha_equivalent, match, match_or_none, unify, unify_or_none
from .signature import ConstructorDecl, DataDecl, Signature
from .substitution import Substitution, identity_subst
from .terms import (
    App,
    FreshNameSupply,
    Position,
    Sym,
    Term,
    Var,
    apply_term,
    arguments,
    free_vars,
    head,
    is_strict_subterm,
    is_subterm,
    positions,
    replace_at,
    spine,
    subterm_at,
    subterms,
    term_size,
)
from .types import (
    DataTy,
    FunTy,
    Type,
    TypeVar,
    arg_types,
    fun_ty,
    result_type,
    type_order,
)

__all__ = [
    # terms
    "Term", "Var", "Sym", "App", "apply_term", "spine", "head", "arguments",
    "free_vars", "subterms", "positions", "subterm_at", "replace_at",
    "term_size", "is_subterm", "is_strict_subterm", "Position", "FreshNameSupply",
    # interning
    "TermBank", "current_bank", "set_current_bank", "use_bank",
    # types
    "Type", "TypeVar", "DataTy", "FunTy", "fun_ty", "arg_types", "result_type", "type_order",
    # contexts
    "Context", "Hole", "context_at", "decompositions",
    # substitutions and matching
    "Substitution", "identity_subst", "match", "match_or_none", "unify",
    "unify_or_none", "alpha_equivalent",
    # signature
    "Signature", "DataDecl", "ConstructorDecl",
    # equations
    "Equation", "satisfied_by", "holds_on_instances",
    # exceptions
    "CycleQError", "TypeCheckError", "UnificationError", "MatchError",
    "SignatureError", "RewriteError", "ProofError", "GlobalConditionError",
    "SearchError", "ParseError", "ElaborationError",
]
