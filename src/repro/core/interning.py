"""Hash-consed term construction: the :class:`TermBank`.

Every :class:`~repro.core.terms.Var`, :class:`~repro.core.terms.Sym` and
:class:`~repro.core.terms.App` node is built through a *bank* that maintains
maximal sharing: structurally equal terms built through the same bank are the
very same Python object.  Within one bank, equality is therefore identity, and
the structural attributes that the rest of the system needs over and over —
size, free variables, head symbol, spine length, hash — are computed once at
construction and cached on the node.

The term constructors in :mod:`repro.core.terms` route through the *current*
bank, so all existing construction sites (tests, examples, the parser, the
prover) get sharing transparently.  A fresh bank can be installed for a scope
with :func:`use_bank`, which is how tests exercise cross-bank behaviour.

Invariant: the two children of an interned ``App`` always belong to the same
bank as the application itself (:meth:`TermBank.app` interns foreign children
first).  Consequently every subterm of a banked term lives in that bank, which
is what makes the O(shared-nodes) subterm check of
:func:`repro.core.terms.is_subterm` sound.
"""

from __future__ import annotations

import threading as _threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = [
    "TermBank",
    "current_bank",
    "set_current_bank",
    "use_bank",
]

# Tags mixed into the cached hashes so that Var("x") and Sym("x") collide less.
_VAR_TAG = 0x9E3779B1
_SYM_TAG = 0x85EBCA77
_APP_TAG = 0xC2B2AE3D

# The concrete node classes, registered by repro.core.terms at import time.
# interning.py deliberately does not import terms.py: the dependency points the
# other way, which keeps the module graph acyclic.
_VarCls: Any = None
_SymCls: Any = None
_AppCls: Any = None

#: The process-wide default bank (created once, shared by every thread that
#: has not installed an override of its own).
_DEFAULT: list = [None]
_DEFAULT_GUARD = _threading.Lock()


def _default_bank() -> "TermBank":
    bank = _DEFAULT[0]
    if bank is None:
        with _DEFAULT_GUARD:
            bank = _DEFAULT[0]
            if bank is None:
                bank = _DEFAULT[0] = TermBank("default")
    return bank


class _State(_threading.local):
    """The current bank, as a *per-thread* slot over a shared default.

    ``use_bank`` in one thread must never redirect interning in another: the
    proof service parses into warm per-theory banks from concurrent request
    threads while enrichment elaborates in its own, and a process-global slot
    would let one scope's terms leak into another's bank.  New threads start
    on the shared default bank, so single-threaded behaviour (and the CLI's)
    is unchanged; the attribute access below is C-level ``threading.local``
    machinery, cheap enough for the term-construction hot path.
    """

    def __init__(self):
        self.bank = _default_bank()


def _install_node_types(var_cls: type, sym_cls: type, app_cls: type) -> None:
    """Called once by :mod:`repro.core.terms` to register the node classes."""
    global _VarCls, _SymCls, _AppCls
    _VarCls, _SymCls, _AppCls = var_cls, sym_cls, app_cls
    _default_bank()


class TermBank:
    """An interning table producing maximally shared term nodes.

    Each node carries a bank-stable integer id (``_id``) and cached structural
    attributes.  The bank keeps strong references to every node it has ever
    built, so ids and identities are stable for the bank's lifetime; create a
    fresh bank (and :func:`use_bank` it) when full isolation is needed.
    """

    __slots__ = ("name", "_vars", "_syms", "_apps", "_next_id", "hits", "misses")

    def __init__(self, name: str = ""):
        self.name = name
        self._vars: Dict[Tuple[str, Any], Any] = {}
        self._syms: Dict[str, Any] = {}
        self._apps: Dict[Tuple[int, int], Any] = {}
        self._next_id = 0
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TermBank({self.name or id(self):x}: {len(self)} nodes)"

    def __len__(self) -> int:
        return len(self._vars) + len(self._syms) + len(self._apps)

    # -- node construction -----------------------------------------------------

    def var(self, name: str, ty: Any):
        """The unique ``Var(name, ty)`` node of this bank."""
        key = (name, ty)
        node = self._vars.get(key)
        if node is not None:
            self.hits += 1
            return node
        self.misses += 1
        node = object.__new__(_VarCls)
        oset = object.__setattr__
        oset(node, "name", name)
        oset(node, "ty", ty)
        oset(node, "_bank", self)
        oset(node, "_id", self._next_id)
        oset(node, "_size", 1)
        oset(node, "_fvs", (node,))
        oset(node, "_head", None)
        oset(node, "_nargs", 0)
        oset(node, "_hash", hash((_VAR_TAG, name, ty)))
        self._next_id += 1
        self._vars[key] = node
        return node

    def sym(self, name: str):
        """The unique ``Sym(name)`` node of this bank."""
        node = self._syms.get(name)
        if node is not None:
            self.hits += 1
            return node
        self.misses += 1
        node = object.__new__(_SymCls)
        oset = object.__setattr__
        oset(node, "name", name)
        oset(node, "_bank", self)
        oset(node, "_id", self._next_id)
        oset(node, "_size", 1)
        oset(node, "_fvs", ())
        oset(node, "_head", name)
        oset(node, "_nargs", 0)
        oset(node, "_hash", hash((_SYM_TAG, name)))
        self._next_id += 1
        self._syms[name] = node
        return node

    def app(self, fun, arg):
        """The unique ``App(fun, arg)`` node of this bank.

        Children built in another bank are interned into this one first, so a
        banked term never mixes nodes from several banks.  Applications over
        *extended* syntax (children that are not terms, e.g. the hole of a
        one-hole context) fall back to plain unshared nodes with ``_bank``
        ``None`` — they compare structurally and never enter the intern table.
        """
        try:
            if fun._bank is not self:
                fun = self.intern(fun)
            if arg._bank is not self:
                arg = self.intern(arg)
        except AttributeError:
            return self._raw_app(fun, arg)
        key = (fun._id, arg._id)
        node = self._apps.get(key)
        if node is not None:
            self.hits += 1
            return node
        self.misses += 1
        ffvs = fun._fvs
        afvs = arg._fvs
        if not afvs:
            fvs = ffvs
        elif not ffvs:
            fvs = afvs
        else:
            merged = list(ffvs)
            present = set(ffvs)
            for v in afvs:
                if v not in present:
                    merged.append(v)
            fvs = tuple(merged)
        node = object.__new__(_AppCls)
        oset = object.__setattr__
        oset(node, "fun", fun)
        oset(node, "arg", arg)
        oset(node, "_bank", self)
        oset(node, "_id", self._next_id)
        oset(node, "_size", 1 + fun._size + arg._size)
        oset(node, "_fvs", fvs)
        oset(node, "_head", fun._head)
        oset(node, "_nargs", fun._nargs + 1)
        oset(node, "_hash", hash((_APP_TAG, fun._hash, arg._hash)))
        self._next_id += 1
        self._apps[key] = node
        return node

    def _raw_app(self, fun, arg):
        """An unshared application node over extended (non-term) children."""
        node = object.__new__(_AppCls)
        oset = object.__setattr__
        oset(node, "fun", fun)
        oset(node, "arg", arg)
        oset(node, "_bank", None)
        oset(node, "_id", -1)
        oset(node, "_size", 1 + getattr(fun, "_size", 1) + getattr(arg, "_size", 1))
        ffvs = getattr(fun, "_fvs", ())
        afvs = getattr(arg, "_fvs", ())
        oset(node, "_fvs", ffvs + tuple(v for v in afvs if v not in ffvs))
        oset(node, "_head", getattr(fun, "_head", None))
        oset(node, "_nargs", getattr(fun, "_nargs", 0) + 1)
        oset(node, "_hash", hash((_APP_TAG, hash(fun), hash(arg))))
        return node

    # -- importing foreign terms -----------------------------------------------

    def intern(self, term):
        """The node of this bank structurally equal to ``term`` (created if new).

        O(1) when ``term`` already belongs to this bank; otherwise the foreign
        term is rebuilt bottom-up (iteratively, so arbitrarily deep spines are
        safe), visiting each *shared* node once.
        """
        if term._bank is self:
            return term
        memo: Dict[int, Any] = {}
        stack = [term]
        app_cls = _AppCls
        var_cls = _VarCls
        while stack:
            t = stack[-1]
            if t._bank is self or id(t) in memo:
                stack.pop()
                continue
            cls = t.__class__
            if cls is app_cls:
                fun, arg = t.fun, t.arg
                pending = False
                if not (fun._bank is self or id(fun) in memo):
                    stack.append(fun)
                    pending = True
                if not (arg._bank is self or id(arg) in memo):
                    stack.append(arg)
                    pending = True
                if pending:
                    continue
                stack.pop()
                new_fun = fun if fun._bank is self else memo[id(fun)]
                new_arg = arg if arg._bank is self else memo[id(arg)]
                memo[id(t)] = self.app(new_fun, new_arg)
            elif cls is var_cls:
                stack.pop()
                memo[id(t)] = self.var(t.name, t.ty)
            else:
                stack.pop()
                memo[id(t)] = self.sym(t.name)
        return memo[id(term)]

    def find(self, term):
        """The node of this bank structurally equal to ``term``, or ``None``.

        Unlike :meth:`intern`, this never creates nodes, which makes it the
        right primitive for containment queries such as ``is_subterm``.
        """
        if term._bank is self:
            return term
        memo: Dict[int, Any] = {}
        stack = [term]
        app_cls = _AppCls
        var_cls = _VarCls
        while stack:
            t = stack[-1]
            if t._bank is self or id(t) in memo:
                stack.pop()
                continue
            cls = t.__class__
            if cls is app_cls:
                fun, arg = t.fun, t.arg
                pending = False
                for child in (fun, arg):
                    if not (child._bank is self or id(child) in memo):
                        stack.append(child)
                        pending = True
                if pending:
                    continue
                stack.pop()
                new_fun = fun if fun._bank is self else memo[id(fun)]
                new_arg = arg if arg._bank is self else memo[id(arg)]
                if new_fun is None or new_arg is None:
                    memo[id(t)] = None
                else:
                    memo[id(t)] = self._apps.get((new_fun._id, new_arg._id))
            elif cls is var_cls:
                stack.pop()
                memo[id(t)] = self._vars.get((t.name, t.ty))
            else:
                stack.pop()
                memo[id(t)] = self._syms.get(t.name)
        return memo[id(term)]

    # -- statistics --------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Interning counters: distinct nodes per kind plus hit/miss totals."""
        return {
            "vars": len(self._vars),
            "syms": len(self._syms),
            "apps": len(self._apps),
            "nodes": len(self),
            "hits": self.hits,
            "misses": self.misses,
        }


#: The per-thread current-bank slot (instantiated here, after TermBank exists,
#: because ``threading.local.__init__`` runs eagerly for the creating thread).
_STATE = _State()


def current_bank() -> TermBank:
    """The bank that the term constructors currently intern into (this thread)."""
    return _STATE.bank


def set_current_bank(bank: TermBank) -> TermBank:
    """Install ``bank`` as this thread's current bank; returns the previous one."""
    previous = _STATE.bank
    _STATE.bank = bank
    return previous


@contextmanager
def use_bank(bank: Optional[TermBank] = None) -> Iterator[TermBank]:
    """Run a block with ``bank`` (default: a fresh bank) as the current bank."""
    if bank is None:
        bank = TermBank()
    previous = set_current_bank(bank)
    try:
        yield bank
    finally:
        _STATE.bank = previous
