"""Exception hierarchy for the CycleQ reproduction.

All library-specific errors derive from :class:`CycleQError` so that callers can
catch everything raised by this package with a single ``except`` clause while
still being able to discriminate the individual failure modes.
"""

from __future__ import annotations


class CycleQError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class TypeCheckError(CycleQError):
    """A term, rule, or equation failed to type check."""


class UnificationError(CycleQError):
    """Two types or terms could not be unified."""


class MatchError(CycleQError):
    """A pattern did not match a target term."""


class SignatureError(CycleQError):
    """A symbol was redeclared, missing, or used inconsistently."""


class RewriteError(CycleQError):
    """A rewrite rule is malformed or reduction exceeded its step budget."""


class ProofError(CycleQError):
    """A preproof is malformed or an inference-rule instance is not well formed."""


class GlobalConditionError(ProofError):
    """A preproof does not satisfy the global correctness condition."""


class CertificateError(ProofError):
    """A proof certificate is malformed, truncated, or of an unknown version."""


class SearchError(CycleQError):
    """Proof search was configured inconsistently or hit an internal limit."""


class ParseError(CycleQError):
    """The surface-language parser rejected its input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ElaborationError(CycleQError):
    """A surface-language program could not be elaborated to a rewrite system."""
