"""Substitutions: partial maps from variables to terms.

Substitutions are keyed by variable *name*; the library maintains the
invariant that within any one scope (a rewrite rule, an equation, a proof
node) variable names are unique, so this is unambiguous and keeps the data
structure simple and fast.

The composition convention follows the paper: ``(theta1 . theta0)(x) =
(theta0(x)) theta1``, i.e. ``theta0`` is applied first.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

from .terms import App, Sym, Term, Var, free_vars

__all__ = ["Substitution", "identity_subst"]


class Substitution(Mapping[str, Term]):
    """An immutable substitution from variable names to terms."""

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Optional[Mapping[str, Term]] = None):
        self._mapping: Dict[str, Term] = dict(mapping) if mapping else {}

    # -- Mapping interface ---------------------------------------------------

    def __getitem__(self, name: str) -> Term:
        return self._mapping[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __contains__(self, name: object) -> bool:
        return name in self._mapping

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._mapping == other._mapping
        if isinstance(other, Mapping):
            return self._mapping == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k} -> {v}" for k, v in sorted(self._mapping.items()))
        return "{" + inner + "}"

    # -- construction ----------------------------------------------------------

    @staticmethod
    def of(*pairs: Tuple[Union[str, Var], Term]) -> "Substitution":
        """Build a substitution from ``(variable, term)`` pairs."""
        mapping: Dict[str, Term] = {}
        for var, term in pairs:
            name = var.name if isinstance(var, Var) else var
            mapping[name] = term
        return Substitution(mapping)

    def extend(self, var: Union[str, Var], term: Term) -> "Substitution":
        """A new substitution with one extra binding."""
        name = var.name if isinstance(var, Var) else var
        mapping = dict(self._mapping)
        mapping[name] = term
        return Substitution(mapping)

    def restrict(self, names: Iterable[str]) -> "Substitution":
        """The restriction of this substitution to the given variable names."""
        wanted = set(names)
        return Substitution({k: v for k, v in self._mapping.items() if k in wanted})

    # -- construction fast path -------------------------------------------------

    @classmethod
    def _adopt(cls, mapping: Dict[str, Term]) -> "Substitution":
        """Wrap a dict the caller owns exclusively, skipping the defensive copy.

        Internal: callers must hand over a freshly built dict and never touch
        it again (the matcher builds its bindings locally, so the copy in
        ``__init__`` was pure overhead on the hottest constructor call site).
        """
        subst = cls.__new__(cls)
        subst._mapping = mapping
        return subst

    # -- action on terms -------------------------------------------------------

    def apply(self, term: Term) -> Term:
        """Apply the substitution to ``term``.

        The traversal is iterative (deep spines are safe) and memoised per
        shared node, so DAG-shaped terms are rewritten in O(shared nodes).
        Subterms whose free variables are disjoint from the domain are returned
        unchanged — with hash-consed terms that check reads the cached
        free-variable tuple instead of walking the subterm.
        """
        mapping = self._mapping
        if not mapping or not term._fvs:
            return term
        # Plain loop instead of all(...): the genexpr allocation showed up in
        # allocation profiles of the prover's substitute phase.
        for v in term._fvs:
            if v.name in mapping:
                break
        else:
            return term
        if term._size <= 128:
            if len(mapping) == 1:
                # Single-binding specialisation: (Subst) instantiations and
                # case-split bindings are overwhelmingly {x -> t}; one name
                # comparison per variable beats a dict probe, and subtrees
                # not mentioning the variable short-circuit on the cached
                # free-variable tuple.
                (name, replacement), = mapping.items()
                return _apply_single(term, name, replacement)
            return self._apply_small(term, mapping)
        memo: Dict[int, Term] = {}
        stack = [term]
        while stack:
            t = stack[-1]
            ident = id(t)
            if ident in memo:
                stack.pop()
                continue
            if isinstance(t, Var):
                stack.pop()
                memo[ident] = mapping.get(t.name, t)
            elif isinstance(t, App):
                if not t._fvs:
                    stack.pop()
                    memo[ident] = t
                    continue
                fun, arg = t.fun, t.arg
                pending = False
                if id(fun) not in memo:
                    stack.append(fun)
                    pending = True
                if id(arg) not in memo:
                    stack.append(arg)
                    pending = True
                if pending:
                    continue
                stack.pop()
                new_fun, new_arg = memo[id(fun)], memo[id(arg)]
                memo[ident] = (
                    t if (new_fun is fun and new_arg is arg) else App(new_fun, new_arg)
                )
            else:
                stack.pop()
                memo[ident] = t
        return memo[id(term)]

    def _apply_small(self, term: Term, mapping: Dict[str, Term]) -> Term:
        """Plain recursive application for small terms (bounded depth), where
        the per-call constant beats the memoised traversal."""
        if isinstance(term, Var):
            return mapping.get(term.name, term)
        if isinstance(term, App):
            if not term._fvs:
                return term
            fun = self._apply_small(term.fun, mapping)
            arg = self._apply_small(term.arg, mapping)
            if fun is term.fun and arg is term.arg:
                return term
            return App(fun, arg)
        return term

    def __call__(self, term: Term) -> Term:
        return self.apply(term)

    # -- algebra ----------------------------------------------------------------

    def compose(self, first: "Substitution") -> "Substitution":
        """The composition ``self . first``: apply ``first`` and then ``self``.

        ``(self.compose(first))(x) = self(first(x))`` for every variable ``x`` in
        the domain of ``first``; bindings of ``self`` for variables outside that
        domain are kept.
        """
        mapping: Dict[str, Term] = {name: self.apply(term) for name, term in first.items()}
        for name, term in self._mapping.items():
            mapping.setdefault(name, term)
        return Substitution(mapping)

    def domain(self) -> Tuple[str, ...]:
        """The variable names bound by this substitution."""
        return tuple(self._mapping)

    def range_vars(self) -> Tuple[Var, ...]:
        """All variables occurring in the terms of the range."""
        seen: Dict[Var, None] = {}
        for term in self._mapping.values():
            for var in free_vars(term):
                seen.setdefault(var, None)
        return tuple(seen)

    def is_renaming(self) -> bool:
        """Is every binding a variable (i.e. is this substitution a renaming)?"""
        return all(isinstance(term, Var) for term in self._mapping.values())

    def is_identity(self) -> bool:
        """Does the substitution map every variable in its domain to itself?"""
        return all(isinstance(t, Var) and t.name == n for n, t in self._mapping.items())


def _apply_single(term: Term, name: str, replacement: Term) -> Term:
    """Apply the one-binding substitution ``{name -> replacement}``.

    Recursive like :meth:`Substitution._apply_small` (same ≤128-size guard at
    the call site bounds the depth), but with the dict probes replaced by
    string comparisons and the irrelevance check by a scan of the cached
    free-variable tuple.
    """
    cls = term.__class__
    if cls is Var:
        return replacement if term.name == name else term
    if cls is App:
        for v in term._fvs:
            if v.name == name:
                break
        else:
            return term
        fun = _apply_single(term.fun, name, replacement)
        arg = _apply_single(term.arg, name, replacement)
        if fun is term.fun and arg is term.arg:
            return term
        return App(fun, arg)
    return term


def identity_subst() -> Substitution:
    """The empty (identity) substitution."""
    return Substitution()
