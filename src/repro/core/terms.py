"""Terms of the equational language.

Terms are generated from application, function symbols, and variables
(paper, Section 2)::

    M, N ::= x | f in Sigma | M N

Applications associate to the left.  Terms are immutable, hashable values, so
they can be used freely as dictionary keys (e.g. for memoising normal forms).

Construction is *hash-consed*: ``Var``/``Sym``/``App`` route through the
current :class:`~repro.core.interning.TermBank`, so structurally equal terms
built through the same bank are the same Python object.  Equality within one
bank is therefore identity, hashes are cached, and the structural queries in
this module (``term_size``, ``free_vars``, ``occurs``, ``is_subterm``) read
attributes computed once at construction instead of re-walking the term.

The module also provides *positions*: a position is a tuple of 0/1 choices
through the binary ``App`` spine (0 selects the function part, 1 the argument
part).  Positions index subterms and drive subterm replacement, which is how
one-hole contexts are realised operationally (see :mod:`repro.core.context`
for the explicit, paper-faithful context datatype).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from . import interning as _interning
from .interning import _STATE
from .types import Type

__all__ = [
    "Term",
    "Var",
    "Sym",
    "App",
    "Position",
    "apply_term",
    "spine",
    "head",
    "arguments",
    "term_size",
    "free_vars",
    "var_names",
    "occurs",
    "subterms",
    "positions",
    "subterm_at",
    "replace_at",
    "proper_subterms",
    "is_subterm",
    "is_strict_subterm",
    "map_symbols",
    "rename_vars",
    "fresh_name",
    "FreshNameSupply",
]


class Term:
    """Abstract base class of all terms.

    Every concrete node carries the bank-maintained attributes ``_bank``,
    ``_id`` (stable integer id within the bank), ``_size`` (tree size),
    ``_fvs`` (free variables, left-to-right, no duplicates), ``_head`` (the
    spine head symbol name, or ``None`` for variable-headed terms), ``_nargs``
    (spine length) and ``_hash``.
    """

    __slots__ = ("_bank", "_id", "_size", "_fvs", "_head", "_nargs", "_hash", "__weakref__")

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(f"terms are immutable: cannot set {name!r}")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"terms are immutable: cannot delete {name!r}")

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - repr is cosmetic
        return str(self)


def _structurally_equal(left: Term, right: Term) -> bool:
    """Structural equality across banks (within a bank, equality is identity)."""
    stack = [(left, right)]
    while stack:
        a, b = stack.pop()
        if a is b:
            continue
        cls = a.__class__
        if cls is not b.__class__:
            return False
        if cls is App:
            if a._hash != b._hash:
                return False
            if a._bank is b._bank and a._bank is not None:
                return False  # maximal sharing: same bank and not identical
            stack.append((a.fun, b.fun))
            stack.append((a.arg, b.arg))
        elif cls is Var:
            if a._bank is b._bank or a.name != b.name or a.ty != b.ty:
                return False
        elif cls is Sym:
            if a._bank is b._bank or a.name != b.name:
                return False
        else:
            # Extended nodes (e.g. the hole of a one-hole context).
            if a != b:
                return False
    return True


class Var(Term):
    """A variable.  Variables carry their type so that the (Case) rule can
    discover which datatype's constructors to enumerate."""

    __slots__ = ("name", "ty")

    def __new__(cls, name: str, ty: Type) -> "Var":
        return _STATE.bank.var(name, ty)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Var:
            return NotImplemented
        if self._bank is other._bank:
            return False
        return self.name == other.name and self.ty == other.ty

    __hash__ = Term.__hash__

    def __str__(self) -> str:
        return self.name


class Sym(Term):
    """An occurrence of a function symbol (constructor or defined function)."""

    __slots__ = ("name",)

    def __new__(cls, name: str) -> "Sym":
        return _STATE.bank.sym(name)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not Sym:
            return NotImplemented
        if self._bank is other._bank:
            return False
        return self.name == other.name

    __hash__ = Term.__hash__

    def __str__(self) -> str:
        return self.name


class App(Term):
    """An application ``fun arg``."""

    __slots__ = ("fun", "arg")

    def __new__(cls, fun: Term, arg: Term) -> "App":
        return _STATE.bank.app(fun, arg)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not App:
            return NotImplemented
        if self._bank is other._bank and self._bank is not None:
            return False
        if self._hash != other._hash or self._size != other._size:
            return False
        return _structurally_equal(self, other)

    __hash__ = Term.__hash__

    def __str__(self) -> str:
        from .pretty import pretty_term  # local import to avoid a cycle

        return pretty_term(self)


# Register the node classes with the interning layer (this also creates the
# default bank on first import).
_interning._install_node_types(Var, Sym, App)


Position = Tuple[int, ...]
"""A path through the ``App`` spine: 0 = function part, 1 = argument part."""


# ---------------------------------------------------------------------------
# Construction and destruction helpers
# ---------------------------------------------------------------------------


def apply_term(head_term: Term, *args: Term) -> Term:
    """Build the left-associated application ``head_term arg_0 ... arg_n``."""
    term = head_term
    for arg in args:
        term = App(term, arg)
    return term


def spine(term: Term) -> Tuple[Term, Tuple[Term, ...]]:
    """Decompose ``term`` into its head and the tuple of its arguments.

    ``spine(f a b) == (f, (a, b))`` and ``spine(x) == (x, ())``.
    """
    args: List[Term] = []
    while isinstance(term, App):
        args.append(term.arg)
        term = term.fun
    args.reverse()
    return term, tuple(args)


def head(term: Term) -> Term:
    """The head of the application spine of ``term``."""
    while isinstance(term, App):
        term = term.fun
    return term


def arguments(term: Term) -> Tuple[Term, ...]:
    """The arguments of the application spine of ``term``."""
    return spine(term)[1]


def term_size(term: Term) -> int:
    """The number of variable/symbol/application nodes in ``term`` (O(1))."""
    return term._size


# ---------------------------------------------------------------------------
# Variables
# ---------------------------------------------------------------------------


def free_vars(term: Term) -> Tuple[Var, ...]:
    """All variables of ``term`` in left-to-right order without duplicates (O(1))."""
    return term._fvs


def var_names(term: Term) -> Tuple[str, ...]:
    """The names of the free variables of ``term`` (order preserved)."""
    return tuple(v.name for v in term._fvs)


def occurs(var: Var, term: Term) -> bool:
    """Does ``var`` occur in ``term``?  O(|free_vars|) via the cached tuple."""
    return var in term._fvs


# ---------------------------------------------------------------------------
# Subterms and positions
# ---------------------------------------------------------------------------


def subterms(term: Term) -> Iterator[Term]:
    """Yield every subterm of ``term`` (including ``term``), pre-order.

    Iterative, so arbitrarily deep application spines are safe.
    """
    stack = [term]
    while stack:
        t = stack.pop()
        yield t
        if t.__class__ is App:
            stack.append(t.arg)
            stack.append(t.fun)


def positions(term: Term) -> Iterator[Tuple[Position, Term]]:
    """Yield ``(position, subterm)`` pairs for every subterm, pre-order.

    Iterative, so arbitrarily deep application spines are safe.
    """
    stack: List[Tuple[Position, Term]] = [((), term)]
    while stack:
        path, t = stack.pop()
        yield path, t
        if t.__class__ is App:
            stack.append((path + (1,), t.arg))
            stack.append((path + (0,), t.fun))


def subterm_at(term: Term, position: Position) -> Term:
    """The subterm of ``term`` at ``position``.

    Raises :class:`IndexError` when the position does not exist in ``term``.
    """
    for step in position:
        if not isinstance(term, App):
            raise IndexError(f"position {position} does not exist")
        term = term.fun if step == 0 else term.arg
    return term


def replace_at(term: Term, position: Position, replacement: Term) -> Term:
    """Replace the subterm of ``term`` at ``position`` with ``replacement``."""
    if not position:
        return replacement
    frames: List[Tuple[App, int]] = []
    current = term
    for step in position:
        if not isinstance(current, App):
            raise IndexError(f"position {position} does not exist")
        frames.append((current, step))
        current = current.fun if step == 0 else current.arg
    result = replacement
    for node, step in reversed(frames):
        result = App(result, node.arg) if step == 0 else App(node.fun, result)
    return result


def proper_subterms(term: Term) -> Iterator[Term]:
    """Yield every subterm of ``term`` except ``term`` itself."""
    iterator = subterms(term)
    next(iterator)
    yield from iterator


def is_subterm(small: Term, big: Term) -> bool:
    """The subterm relation ``small <= big`` (paper's ⊴, Lemma 2.1).

    Because every subterm of a banked term belongs to the same bank, the check
    resolves ``small`` into ``big``'s bank once (a pure lookup — no nodes are
    created) and then walks ``big`` as a DAG comparing node *identities*: each
    shared node is visited at most once.
    """
    if small is big:
        return True
    bank = big._bank
    if small._bank is not bank:
        resolved = bank.find(small)
        if resolved is None:
            return False
        small = resolved
        if small is big:
            return True
    small_size = small._size
    if small_size > big._size:
        return False
    stack = [big]
    seen = set()
    while stack:
        t = stack.pop()
        if t is small:
            return True
        if t.__class__ is App and t._size > small_size:
            ident = id(t)
            if ident not in seen:
                seen.add(ident)
                stack.append(t.fun)
                stack.append(t.arg)
    return False


def is_strict_subterm(small: Term, big: Term) -> bool:
    """The strict subterm relation ``small < big`` (paper's ◁)."""
    return small != big and is_subterm(small, big)


# ---------------------------------------------------------------------------
# Structural transformations
# ---------------------------------------------------------------------------


def _rebuild(term: Term, leaf: Callable[[Term], Term]) -> Term:
    """Rebuild ``term`` bottom-up, replacing each leaf by ``leaf(node)``.

    Iterative and memoised per shared node, so deep spines are safe and DAGs
    are rebuilt in O(shared nodes).  Unchanged subtrees are returned as-is,
    preserving sharing.
    """
    memo: Dict[int, Term] = {}
    stack = [term]
    while stack:
        t = stack[-1]
        ident = id(t)
        if ident in memo:
            stack.pop()
            continue
        if t.__class__ is App:
            fun, arg = t.fun, t.arg
            pending = False
            if id(fun) not in memo:
                stack.append(fun)
                pending = True
            if id(arg) not in memo:
                stack.append(arg)
                pending = True
            if pending:
                continue
            stack.pop()
            new_fun, new_arg = memo[id(fun)], memo[id(arg)]
            memo[ident] = t if (new_fun is fun and new_arg is arg) else App(new_fun, new_arg)
        else:
            stack.pop()
            memo[ident] = leaf(t)
    return memo[id(term)]


def map_symbols(term: Term, rename: Callable[[str], str]) -> Term:
    """Rename the function symbols of ``term`` according to ``rename``."""
    return _rebuild(term, lambda t: Sym(rename(t.name)) if t.__class__ is Sym else t)


def rename_vars(term: Term, mapping: Dict[str, Var]) -> Term:
    """Replace variables (by name) according to ``mapping``; others unchanged."""
    return _rebuild(
        term, lambda t: mapping.get(t.name, t) if t.__class__ is Var else t
    )


# ---------------------------------------------------------------------------
# Fresh names
# ---------------------------------------------------------------------------


def fresh_name(base: str, taken: Sequence[str]) -> str:
    """A variable name based on ``base`` that does not occur in ``taken``."""
    taken_set = set(taken)
    if base not in taken_set:
        return base
    index = 1
    while f"{base}{index}" in taken_set:
        index += 1
    return f"{base}{index}"


class FreshNameSupply:
    """A supply of globally fresh variable names.

    The prover uses one supply per proof attempt so that freshly introduced
    pattern variables never clash with the variables of any node of the proof.
    """

    def __init__(self, prefix: str = ""):
        self._prefix = prefix
        self._counters: Dict[str, int] = {}
        self._taken: set = set()

    def reserve(self, names: Sequence[str]) -> None:
        """Mark ``names`` as already in use."""
        self._taken.update(names)

    def fresh(self, base: str) -> str:
        """Return a fresh name derived from ``base`` and mark it as taken."""
        base = base or "x"
        count = self._counters.get(base, 0)
        while True:
            count += 1
            candidate = f"{self._prefix}{base}{count}"
            if candidate not in self._taken:
                self._counters[base] = count
                self._taken.add(candidate)
                return candidate
