"""Terms of the equational language.

Terms are generated from application, function symbols, and variables
(paper, Section 2)::

    M, N ::= x | f in Sigma | M N

Applications associate to the left.  Terms are immutable, hashable values, so
they can be used freely as dictionary keys (e.g. for memoising normal forms).

The module also provides *positions*: a position is a tuple of 0/1 choices
through the binary ``App`` spine (0 selects the function part, 1 the argument
part).  Positions index subterms and drive subterm replacement, which is how
one-hole contexts are realised operationally (see :mod:`repro.core.context`
for the explicit, paper-faithful context datatype).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .types import Type

__all__ = [
    "Term",
    "Var",
    "Sym",
    "App",
    "Position",
    "apply_term",
    "spine",
    "head",
    "arguments",
    "term_size",
    "free_vars",
    "var_names",
    "occurs",
    "subterms",
    "positions",
    "subterm_at",
    "replace_at",
    "proper_subterms",
    "is_subterm",
    "is_strict_subterm",
    "map_symbols",
    "rename_vars",
    "fresh_name",
    "FreshNameSupply",
]


class Term:
    """Abstract base class of all terms."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr is cosmetic
        return str(self)


@dataclass(frozen=True)
class Var(Term):
    """A variable.  Variables carry their type so that the (Case) rule can
    discover which datatype's constructors to enumerate."""

    name: str
    ty: Type

    __slots__ = ("name", "ty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Sym(Term):
    """An occurrence of a function symbol (constructor or defined function)."""

    name: str

    __slots__ = ("name",)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class App(Term):
    """An application ``fun arg``."""

    fun: Term
    arg: Term

    __slots__ = ("fun", "arg")

    def __str__(self) -> str:
        from .pretty import pretty_term  # local import to avoid a cycle

        return pretty_term(self)


Position = Tuple[int, ...]
"""A path through the ``App`` spine: 0 = function part, 1 = argument part."""


# ---------------------------------------------------------------------------
# Construction and destruction helpers
# ---------------------------------------------------------------------------


def apply_term(head_term: Term, *args: Term) -> Term:
    """Build the left-associated application ``head_term arg_0 ... arg_n``."""
    term = head_term
    for arg in args:
        term = App(term, arg)
    return term


def spine(term: Term) -> Tuple[Term, Tuple[Term, ...]]:
    """Decompose ``term`` into its head and the tuple of its arguments.

    ``spine(f a b) == (f, (a, b))`` and ``spine(x) == (x, ())``.
    """
    args: List[Term] = []
    while isinstance(term, App):
        args.append(term.arg)
        term = term.fun
    args.reverse()
    return term, tuple(args)


def head(term: Term) -> Term:
    """The head of the application spine of ``term``."""
    while isinstance(term, App):
        term = term.fun
    return term


def arguments(term: Term) -> Tuple[Term, ...]:
    """The arguments of the application spine of ``term``."""
    return spine(term)[1]


def term_size(term: Term) -> int:
    """The number of variable/symbol/application nodes in ``term``."""
    if isinstance(term, App):
        return 1 + term_size(term.fun) + term_size(term.arg)
    return 1


# ---------------------------------------------------------------------------
# Variables
# ---------------------------------------------------------------------------


def free_vars(term: Term) -> Tuple[Var, ...]:
    """All variables of ``term`` in left-to-right order without duplicates."""
    seen: Dict[Var, None] = {}

    def walk(t: Term) -> None:
        if isinstance(t, Var):
            seen.setdefault(t, None)
        elif isinstance(t, App):
            walk(t.fun)
            walk(t.arg)

    walk(term)
    return tuple(seen)


def var_names(term: Term) -> Tuple[str, ...]:
    """The names of the free variables of ``term`` (order preserved)."""
    return tuple(v.name for v in free_vars(term))


def occurs(var: Var, term: Term) -> bool:
    """Does ``var`` occur in ``term``?"""
    if isinstance(term, Var):
        return term == var
    if isinstance(term, App):
        return occurs(var, term.fun) or occurs(var, term.arg)
    return False


# ---------------------------------------------------------------------------
# Subterms and positions
# ---------------------------------------------------------------------------


def subterms(term: Term) -> Iterator[Term]:
    """Yield every subterm of ``term`` (including ``term``), pre-order."""
    yield term
    if isinstance(term, App):
        yield from subterms(term.fun)
        yield from subterms(term.arg)


def positions(term: Term) -> Iterator[Tuple[Position, Term]]:
    """Yield ``(position, subterm)`` pairs for every subterm, pre-order."""

    def walk(t: Term, path: Tuple[int, ...]) -> Iterator[Tuple[Position, Term]]:
        yield path, t
        if isinstance(t, App):
            yield from walk(t.fun, path + (0,))
            yield from walk(t.arg, path + (1,))

    yield from walk(term, ())


def subterm_at(term: Term, position: Position) -> Term:
    """The subterm of ``term`` at ``position``.

    Raises :class:`IndexError` when the position does not exist in ``term``.
    """
    for step in position:
        if not isinstance(term, App):
            raise IndexError(f"position {position} does not exist")
        term = term.fun if step == 0 else term.arg
    return term


def replace_at(term: Term, position: Position, replacement: Term) -> Term:
    """Replace the subterm of ``term`` at ``position`` with ``replacement``."""
    if not position:
        return replacement
    if not isinstance(term, App):
        raise IndexError(f"position {position} does not exist")
    step, rest = position[0], position[1:]
    if step == 0:
        return App(replace_at(term.fun, rest, replacement), term.arg)
    return App(term.fun, replace_at(term.arg, rest, replacement))


def proper_subterms(term: Term) -> Iterator[Term]:
    """Yield every subterm of ``term`` except ``term`` itself."""
    iterator = subterms(term)
    next(iterator)
    yield from iterator


def is_subterm(small: Term, big: Term) -> bool:
    """The subterm relation ``small <= big`` (paper's ⊴, Lemma 2.1)."""
    return any(small == sub for sub in subterms(big))


def is_strict_subterm(small: Term, big: Term) -> bool:
    """The strict subterm relation ``small < big`` (paper's ◁)."""
    return small != big and is_subterm(small, big)


# ---------------------------------------------------------------------------
# Structural transformations
# ---------------------------------------------------------------------------


def map_symbols(term: Term, rename: Callable[[str], str]) -> Term:
    """Rename the function symbols of ``term`` according to ``rename``."""
    if isinstance(term, Sym):
        return Sym(rename(term.name))
    if isinstance(term, App):
        return App(map_symbols(term.fun, rename), map_symbols(term.arg, rename))
    return term


def rename_vars(term: Term, mapping: Dict[str, Var]) -> Term:
    """Replace variables (by name) according to ``mapping``; others unchanged."""
    if isinstance(term, Var):
        return mapping.get(term.name, term)
    if isinstance(term, App):
        return App(rename_vars(term.fun, mapping), rename_vars(term.arg, mapping))
    return term


# ---------------------------------------------------------------------------
# Fresh names
# ---------------------------------------------------------------------------


def fresh_name(base: str, taken: Sequence[str]) -> str:
    """A variable name based on ``base`` that does not occur in ``taken``."""
    taken_set = set(taken)
    if base not in taken_set:
        return base
    index = 1
    while f"{base}{index}" in taken_set:
        index += 1
    return f"{base}{index}"


class FreshNameSupply:
    """A supply of globally fresh variable names.

    The prover uses one supply per proof attempt so that freshly introduced
    pattern variables never clash with the variables of any node of the proof.
    """

    def __init__(self, prefix: str = ""):
        self._prefix = prefix
        self._counters: Dict[str, int] = {}
        self._taken: set = set()

    def reserve(self, names: Sequence[str]) -> None:
        """Mark ``names`` as already in use."""
        self._taken.update(names)

    def fresh(self, base: str) -> str:
        """Return a fresh name derived from ``base`` and mark it as taken."""
        base = base or "x"
        count = self._counters.get(base, 0)
        while True:
            count += 1
            candidate = f"{self._prefix}{base}{count}"
            if candidate not in self._taken:
                self._counters[base] = count
                self._taken.add(candidate)
                return candidate
