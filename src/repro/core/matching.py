"""First-order matching and unification on terms.

Matching is the workhorse of both reduction (finding redexes of rewrite rules)
and cycle formation (the (Subst) rule matches a lemma's side against a subterm
of the goal).  Unification is used by the ``Expand`` operator of rewriting
induction (Section 4) and by the critical-pair computation.

Both procedures are purely syntactic/first-order: terms are applicative but the
patterns produced by programs never contain applied variables, so first-order
matching over the binary ``App`` structure is complete for our use cases.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .exceptions import MatchError, UnificationError
from .substitution import Substitution
from .terms import App, Sym, Term, Var, free_vars, occurs

__all__ = ["match", "match_or_none", "unify", "unify_or_none", "alpha_equivalent"]


def match_or_none(pattern: Term, target: Term, subst: Optional[Dict[str, Term]] = None) -> Optional[Substitution]:
    """One-way matching: find ``theta`` with ``pattern theta == target``.

    Returns ``None`` when the pattern does not match.  ``subst`` may provide
    pre-existing bindings (used when matching argument lists left to right).
    """
    bindings: Dict[str, Term] = dict(subst) if subst else {}
    # Flat pattern/target pairs on one stack — no per-frame tuple, the
    # allocation the profiler charged to every App descent.
    stack = [pattern, target]
    while stack:
        tgt = stack.pop()
        pat = stack.pop()
        cls = pat.__class__
        if cls is Var:
            bound = bindings.get(pat.name)
            if bound is None:
                bindings[pat.name] = tgt
            elif bound is not tgt and bound != tgt:
                return None
        elif cls is Sym:
            if pat is not tgt and (tgt.__class__ is not Sym or pat.name != tgt.name):
                return None
        elif cls is App:
            if tgt.__class__ is not App:
                return None
            # A symbol-headed pattern spine can only match a target spine with
            # the same head symbol and the same number of arguments; both are
            # cached at construction, so this prunes in O(1).
            pat_head = pat._head
            if pat_head is not None and (
                pat_head != tgt._head or pat._nargs != tgt._nargs
            ):
                return None
            # A ground (variable-free) pattern matches exactly itself; with
            # hash-consing that comparison is (in-bank) an identity check.
            if not pat._fvs:
                if pat is tgt or pat == tgt:
                    continue
                return None
            stack.append(pat.fun)
            stack.append(tgt.fun)
            stack.append(pat.arg)
            stack.append(tgt.arg)
        else:  # pragma: no cover - defensive
            return None
    # The bindings dict is local and complete; hand it over without the
    # defensive copy Substitution's public constructor would make.
    return Substitution._adopt(bindings)


def match(pattern: Term, target: Term) -> Substitution:
    """Like :func:`match_or_none` but raises :class:`MatchError` on failure."""
    result = match_or_none(pattern, target)
    if result is None:
        raise MatchError(f"{pattern} does not match {target}")
    return result


def _walk(term: Term, bindings: Dict[str, Term]) -> Term:
    while isinstance(term, Var) and term.name in bindings:
        term = bindings[term.name]
    return term


def _occurs_in(name: str, term: Term, bindings: Dict[str, Term]) -> bool:
    stack = [term]
    while stack:
        t = _walk(stack.pop(), bindings)
        if isinstance(t, Var):
            if t.name == name:
                return True
        elif isinstance(t, App):
            if not t._fvs:
                continue  # ground subterm: nothing to expand, nothing to find
            stack.append(t.fun)
            stack.append(t.arg)
    return False


def unify_or_none(left: Term, right: Term) -> Optional[Substitution]:
    """Most general unifier of two terms, or ``None`` when none exists.

    The caller is responsible for renaming apart if the terms are meant to
    have disjoint variables (as in critical-pair computation).
    """
    bindings: Dict[str, Term] = {}
    stack = [(left, right)]
    while stack:
        a, b = stack.pop()
        a = _walk(a, bindings)
        b = _walk(b, bindings)
        if a == b:
            continue
        if isinstance(a, Var):
            if _occurs_in(a.name, b, bindings):
                return None
            bindings[a.name] = b
        elif isinstance(b, Var):
            if _occurs_in(b.name, a, bindings):
                return None
            bindings[b.name] = a
        elif isinstance(a, Sym) and isinstance(b, Sym):
            if a.name != b.name:
                return None
        elif isinstance(a, App) and isinstance(b, App):
            # Two symbol-headed spines only unify when the heads agree and the
            # spines have the same length (spine nodes are never variables, so
            # bindings cannot rescue a head/arity clash).
            if (
                a._head is not None
                and b._head is not None
                and (a._head != b._head or a._nargs != b._nargs)
            ):
                return None
            stack.append((a.fun, b.fun))
            stack.append((a.arg, b.arg))
        else:
            return None
    # Resolve the triangular substitution into an idempotent one.
    resolved: Dict[str, Term] = {}
    partial = Substitution(bindings)
    for name in bindings:
        term = partial.apply(bindings[name])
        # Repeated application converges because the occurs check rules out loops.
        previous = None
        while previous != term:
            previous = term
            term = partial.apply(term)
        resolved[name] = term
    return Substitution(resolved)


def unify(left: Term, right: Term) -> Substitution:
    """Like :func:`unify_or_none` but raises :class:`UnificationError` on failure."""
    result = unify_or_none(left, right)
    if result is None:
        raise UnificationError(f"cannot unify {left} with {right}")
    return result


def alpha_equivalent(left: Term, right: Term) -> bool:
    """Are two terms equal up to a renaming of variables?

    Terms have no binders, so alpha equivalence amounts to the existence of a
    bijective variable renaming between them.
    """
    forward = match_or_none(left, right)
    backward = match_or_none(right, left)
    if forward is None or backward is None:
        return False
    return forward.is_renaming() and backward.is_renaming()
