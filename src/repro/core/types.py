"""Simple types over algebraic datatypes, with type variables for polymorphism.

The paper works with simple types built over a finite set of datatypes::

    tau, sigma ::= d in D | tau -> sigma

CycleQ's implementation additionally supports (prenex) polymorphism, so we add
type variables and parameterised datatypes (``List a``).  Types are immutable
and hashable; a small first-order unification procedure over types supports the
instantiation of polymorphic constructors and defined functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from .exceptions import UnificationError

__all__ = [
    "Type",
    "TypeVar",
    "DataTy",
    "FunTy",
    "type_order",
    "fun_ty",
    "arg_types",
    "result_type",
    "free_type_vars",
    "TypeSubst",
    "apply_type_subst",
    "unify_types",
    "match_type",
    "instantiate",
    "rename_type_vars",
]


class Type:
    """Abstract base class of all types."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr is cosmetic
        return str(self)


@dataclass(frozen=True)
class TypeVar(Type):
    """A type variable, e.g. ``a`` in ``List a``."""

    name: str

    __slots__ = ("name",)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class DataTy(Type):
    """An (applied) algebraic datatype, e.g. ``Nat`` or ``List Nat``."""

    name: str
    args: Tuple[Type, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        rendered = " ".join(_atom(a) for a in self.args)
        return f"{self.name} {rendered}"


@dataclass(frozen=True)
class FunTy(Type):
    """A function type ``arg -> res``."""

    arg: Type
    res: Type

    __slots__ = ("arg", "res")

    def __str__(self) -> str:
        left = str(self.arg)
        if isinstance(self.arg, FunTy):
            left = f"({left})"
        return f"{left} -> {self.res}"


def _atom(ty: Type) -> str:
    """Render ``ty`` with parentheses when it is not syntactically atomic."""
    text = str(ty)
    if isinstance(ty, FunTy) or (isinstance(ty, DataTy) and ty.args):
        return f"({text})"
    return text


def type_order(ty: Type) -> int:
    """The order of a type (paper, Section 2).

    ``ord(d) = 0`` and ``ord(tau -> sigma) = max(ord(tau) + 1, ord(sigma))``.
    Type variables are treated as base types of order 0.
    """
    if isinstance(ty, FunTy):
        return max(type_order(ty.arg) + 1, type_order(ty.res))
    return 0


def fun_ty(args: Sequence[Type], res: Type) -> Type:
    """Build the curried function type ``args[0] -> ... -> args[-1] -> res``."""
    ty = res
    for arg in reversed(list(args)):
        ty = FunTy(arg, ty)
    return ty


def arg_types(ty: Type) -> Tuple[Type, ...]:
    """The list of argument types of a (curried) function type."""
    args = []
    while isinstance(ty, FunTy):
        args.append(ty.arg)
        ty = ty.res
    return tuple(args)


def result_type(ty: Type) -> Type:
    """The final result type of a (curried) function type."""
    while isinstance(ty, FunTy):
        ty = ty.res
    return ty


def free_type_vars(ty: Type) -> Tuple[str, ...]:
    """The type variables occurring in ``ty`` in left-to-right order, no duplicates."""
    seen: Dict[str, None] = {}

    def walk(t: Type) -> None:
        if isinstance(t, TypeVar):
            seen.setdefault(t.name, None)
        elif isinstance(t, DataTy):
            for a in t.args:
                walk(a)
        elif isinstance(t, FunTy):
            walk(t.arg)
            walk(t.res)

    walk(ty)
    return tuple(seen)


# ---------------------------------------------------------------------------
# Type substitutions and unification
# ---------------------------------------------------------------------------

TypeSubst = Dict[str, Type]
"""A type substitution maps type-variable names to types."""


def apply_type_subst(subst: TypeSubst, ty: Type) -> Type:
    """Apply a type substitution to ``ty``."""
    if isinstance(ty, TypeVar):
        return subst.get(ty.name, ty)
    if isinstance(ty, DataTy):
        if not ty.args:
            return ty
        return DataTy(ty.name, tuple(apply_type_subst(subst, a) for a in ty.args))
    if isinstance(ty, FunTy):
        return FunTy(apply_type_subst(subst, ty.arg), apply_type_subst(subst, ty.res))
    raise TypeError(f"unknown type node: {ty!r}")


def _occurs(name: str, ty: Type, subst: TypeSubst) -> bool:
    ty = _walk(ty, subst)
    if isinstance(ty, TypeVar):
        return ty.name == name
    if isinstance(ty, DataTy):
        return any(_occurs(name, a, subst) for a in ty.args)
    if isinstance(ty, FunTy):
        return _occurs(name, ty.arg, subst) or _occurs(name, ty.res, subst)
    return False


def _walk(ty: Type, subst: TypeSubst) -> Type:
    while isinstance(ty, TypeVar) and ty.name in subst:
        ty = subst[ty.name]
    return ty


def unify_types(a: Type, b: Type, subst: Optional[TypeSubst] = None) -> TypeSubst:
    """Unify two types, extending ``subst`` (triangular form) in place.

    Returns the substitution; raises :class:`UnificationError` when the types
    cannot be unified.  The returned substitution is *triangular*: use
    :func:`resolve` (or repeated :func:`apply_type_subst`) to fully ground it.
    """
    if subst is None:
        subst = {}
    stack = [(a, b)]
    while stack:
        left, right = stack.pop()
        left = _walk(left, subst)
        right = _walk(right, subst)
        if left == right:
            continue
        if isinstance(left, TypeVar):
            if _occurs(left.name, right, subst):
                raise UnificationError(f"occurs check failed: {left} in {right}")
            subst[left.name] = right
        elif isinstance(right, TypeVar):
            if _occurs(right.name, left, subst):
                raise UnificationError(f"occurs check failed: {right} in {left}")
            subst[right.name] = left
        elif isinstance(left, DataTy) and isinstance(right, DataTy):
            if left.name != right.name or len(left.args) != len(right.args):
                raise UnificationError(f"cannot unify {left} with {right}")
            stack.extend(zip(left.args, right.args))
        elif isinstance(left, FunTy) and isinstance(right, FunTy):
            stack.append((left.arg, right.arg))
            stack.append((left.res, right.res))
        else:
            raise UnificationError(f"cannot unify {left} with {right}")
    return subst


def resolve(ty: Type, subst: TypeSubst) -> Type:
    """Fully apply a triangular substitution produced by :func:`unify_types`."""
    ty = _walk(ty, subst)
    if isinstance(ty, DataTy):
        return DataTy(ty.name, tuple(resolve(a, subst) for a in ty.args))
    if isinstance(ty, FunTy):
        return FunTy(resolve(ty.arg, subst), resolve(ty.res, subst))
    return ty


def match_type(pattern: Type, target: Type, subst: Optional[TypeSubst] = None) -> TypeSubst:
    """One-way type matching: find ``subst`` with ``pattern[subst] == target``."""
    if subst is None:
        subst = {}
    if isinstance(pattern, TypeVar):
        bound = subst.get(pattern.name)
        if bound is None:
            subst[pattern.name] = target
            return subst
        if bound != target:
            raise UnificationError(f"inconsistent binding for {pattern}: {bound} vs {target}")
        return subst
    if isinstance(pattern, DataTy) and isinstance(target, DataTy):
        if pattern.name != target.name or len(pattern.args) != len(target.args):
            raise UnificationError(f"cannot match {pattern} against {target}")
        for p, t in zip(pattern.args, target.args):
            match_type(p, t, subst)
        return subst
    if isinstance(pattern, FunTy) and isinstance(target, FunTy):
        match_type(pattern.arg, target.arg, subst)
        match_type(pattern.res, target.res, subst)
        return subst
    if pattern == target:
        return subst
    raise UnificationError(f"cannot match {pattern} against {target}")


_INSTANTIATION_COUNTER = [0]


def instantiate(ty: Type, prefix: str = "$t") -> Type:
    """Replace the type variables of ``ty`` with globally fresh ones.

    Used when a polymorphic symbol is mentioned so that distinct occurrences do
    not share type variables.
    """
    mapping: Dict[str, Type] = {}
    for name in free_type_vars(ty):
        _INSTANTIATION_COUNTER[0] += 1
        mapping[name] = TypeVar(f"{prefix}{_INSTANTIATION_COUNTER[0]}")
    return apply_type_subst(mapping, ty)


def rename_type_vars(ty: Type, mapping: Dict[str, str]) -> Type:
    """Rename type variables according to ``mapping`` (missing names unchanged)."""
    subst: TypeSubst = {old: TypeVar(new) for old, new in mapping.items()}
    return apply_type_subst(subst, ty)


def iter_subtypes(ty: Type) -> Iterator[Type]:
    """Yield ``ty`` and all of its syntactic subtypes (pre-order)."""
    yield ty
    if isinstance(ty, DataTy):
        for a in ty.args:
            yield from iter_subtypes(a)
    elif isinstance(ty, FunTy):
        yield from iter_subtypes(ty.arg)
        yield from iter_subtypes(ty.res)
