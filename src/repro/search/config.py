"""Configuration of the CycleQ proof-search algorithm.

The defaults correspond to the strategy described in Section 6 of the paper:
bounded depth-first search, lemmas restricted to (Case)-justified nodes
(Section 5.1), and incremental size-change soundness checking (Section 5.2).
The remaining knobs exist for the ablation experiments in ``benchmarks/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..rewriting.reduction import compile_rules_default

__all__ = ["ProverConfig", "LEMMAS_CASE_ONLY", "LEMMAS_ALL", "LEMMAS_NONE", "STRATEGY_DFS"]

STRATEGY_DFS = "dfs"
"""The default search strategy: the paper's bounded depth-first search."""

LEMMAS_CASE_ONLY = "case-only"
"""Only (Case)-justified nodes may serve as lemmas — the paper's restriction."""

LEMMAS_ALL = "all"
"""Every justified node may serve as a lemma (ablation; much larger search space)."""

LEMMAS_NONE = "none"
"""Disable the (Subst) rule entirely (ablation; no cycles can be formed)."""


@dataclass(frozen=True)
class ProverConfig:
    """Tunable parameters of the proof search."""

    max_depth: int = 14
    """Maximum number of (Subst)/(Case) applications along a single branch."""

    max_case_splits: int = 5
    """Maximum number of (Case) applications along a single branch."""

    max_nodes: int = 4000
    """Total vertex budget for one proof attempt."""

    max_subst_applications_per_goal: int = 24
    """How many candidate (Subst) instances are tried for a single subgoal."""

    max_goal_size: int = 300
    """Maximum size (in term nodes) of a subgoal created by (Subst).

    Rewriting with a lemma can grow the goal; continuations larger than this
    bound are not explored, which keeps the failing branches of the search from
    chasing ever larger terms."""

    lemma_restriction: str = LEMMAS_CASE_ONLY
    """Which nodes are eligible lemmas: ``case-only`` (paper), ``all``, or ``none``."""

    strategy: str = STRATEGY_DFS
    """Which search strategy drives the agenda core (:mod:`repro.search.agenda`).

    ``dfs`` (the paper's depth-first search, byte-for-byte the historical
    expansion order), ``iddfs`` (iterative deepening on case depth), or
    ``best-first`` (priority-queue ordering by normalised goal size).  New
    strategies register themselves in ``repro.search.agenda.STRATEGIES``."""

    incremental_soundness: bool = True
    """Maintain the size-change closure incrementally (Section 5.2).

    When ``False`` the global condition is recomputed from scratch every time a
    potentially cycle-forming edge is added — the strategy the paper identifies
    as a bottleneck in Cyclist-style provers."""

    use_congruence: bool = True
    """Apply constructor decomposition eagerly (Section 6)."""

    use_funext: bool = True
    """Apply function extensionality to goals of arrow type (Section 6)."""

    timeout: Optional[float] = 5.0
    """Wall-clock budget in seconds for one proof attempt (``None`` = unlimited)."""

    falsify_first: bool = False
    """Test the goal on ground instances before searching for a proof.

    When set, every attempt first runs the compiled-evaluator falsifier
    (:mod:`repro.semantics.falsify`); a refuted goal returns a ``disproved``
    :class:`~repro.search.result.ProofResult` carrying a replayable
    :class:`~repro.semantics.falsify.Counterexample` and never enters proof
    search.  Conditional goals — out of scope for the proof system — can still
    be *disproved* this way.  Part of the configuration fingerprint, like
    every other field."""

    emit_proofs: bool = False
    """Attach a portable :class:`~repro.proofs.certificate.ProofCertificate`
    to every successful result (:attr:`repro.search.result.ProofResult.certificate`).

    Certificates are bank-independent primitive data, so they survive process
    boundaries and result-store round trips; re-check them with
    :func:`repro.proofs.checker.check_certificate` or ``python -m repro check``.
    Part of the configuration fingerprint: an outcome persisted without a
    certificate is never replayed for a run that expects one."""

    max_hints: Optional[int] = None
    """Cap on externally supplied hypotheses per attempt (``None`` = no cap).

    Hints beyond the cap are dropped *in order* (earlier hints win — callers
    such as the proof service rank their library lemmas before offering them).
    Every hypothesis becomes an unjustified (Hyp) vertex that the (Subst) rule
    may instantiate, so an unbounded hint list inflates the branching factor
    of every subgoal; services offering a whole lemma library set this.  Part
    of the configuration fingerprint like every other field."""

    compile_rules: bool = field(default_factory=lambda: compile_rules_default())
    """Dispatch normalisation through per-symbol compiled match trees.

    The prover's :class:`~repro.rewriting.reduction.Normalizer` then reduces
    roots via :class:`~repro.rewriting.compile.CompiledRewriteSystem` (with
    transparent per-head fallback to generic matching) instead of the
    candidate-lookup + first-order-matching loop.  The two dispatchers compute
    identical reducts — this flag exists for benchmarking the generic baseline
    (CLI ``--no-compile-rules``) and for parity runs, not because results
    differ.  The default is on; setting the ``REPRO_NO_COMPILE_RULES``
    environment variable (to any non-empty value) flips the default off
    process-wide, which is how CI runs the whole test suite over the generic
    path (explicit ``compile_rules=`` arguments always win).  Part of the
    configuration fingerprint like every other field."""

    def with_(self, **changes) -> "ProverConfig":
        """A copy of the configuration with the given fields replaced."""
        return replace(self, **changes)

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent settings."""
        if self.lemma_restriction not in (LEMMAS_CASE_ONLY, LEMMAS_ALL, LEMMAS_NONE):
            raise ValueError(f"unknown lemma restriction {self.lemma_restriction!r}")
        if self.max_depth < 1 or self.max_nodes < 1:
            raise ValueError("search bounds must be positive")
        if self.max_hints is not None and self.max_hints < 0:
            raise ValueError("max_hints must be non-negative (or None for no cap)")
        # Deferred import: agenda holds the strategy registry and must stay
        # importable without the configuration module (and vice versa).
        from .agenda import get_strategy

        get_strategy(self.strategy)
