"""The CycleQ prover: goal-directed cyclic proof search (Section 6).

The prover performs a bounded depth-first search with the rule priority of the
paper: reduction, reflexivity, congruence (constructor decomposition), function
extensionality, substitution, case analysis.  The first four always simplify
the goal and are applied eagerly without backtracking; (Subst) and (Case) are
backtracking choice points.

Cycle formation is mediated by (Subst) used as a matching function: the lemma
of every (Subst) instance is an *existing node of the proof under
construction*, restricted by default to (Case)-justified nodes (the redundancy
eliminations of Section 5.1).  Global correctness is enforced during the search
by annotating every edge with its size-change graph and maintaining the closure
incrementally (Section 5.2): the moment a newly formed cycle admits no
infinitely progressing variable trace, the branch is pruned.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.equations import Equation
from ..core.matching import match_or_none
from ..core.substitution import Substitution
from ..core.terms import (
    App,
    FreshNameSupply,
    Position,
    Sym,
    Term,
    Var,
    apply_term,
    free_vars,
    positions,
    replace_at,
    spine,
    term_size,
)
from ..core.types import DataTy, FunTy
from ..program import Goal, Program
from ..proofs.preproof import (
    RULE_CASE,
    RULE_CONG,
    RULE_FUNEXT,
    RULE_HYP,
    RULE_REDUCE,
    RULE_REFL,
    RULE_SUBST,
    Preproof,
    ProofNode,
)
from ..proofs.soundness import edge_size_change_graph, proof_size_change_graphs
from ..rewriting.narrowing import case_candidates
from ..rewriting.reduction import Normalizer
from ..sizechange.closure import IncrementalClosure, check_global_condition
from .config import LEMMAS_ALL, LEMMAS_CASE_ONLY, LEMMAS_NONE, ProverConfig
from .result import ProofResult, SearchStatistics

__all__ = ["Prover", "prove", "prove_goal"]


class _Budget(Exception):
    """Raised internally when the node or time budget is exhausted."""


class Prover:
    """A reusable prover bound to one program and one configuration."""

    def __init__(self, program: Program, config: Optional[ProverConfig] = None):
        self.program = program
        self.config = config or ProverConfig()
        self.config.validate()

    # -- public API ----------------------------------------------------------

    def prove(
        self,
        equation: Equation,
        goal_name: str = "",
        hypotheses: Sequence[Equation] = (),
    ) -> ProofResult:
        """Attempt to prove a single (unconditional) equation.

        ``hypotheses`` are externally supplied lemmas (e.g. produced by a theory
        exploration tool, a human hint, or the rewriting-induction translation
        of Section 4).  They become unjustified hypothesis vertices of the
        preproof — the result is then a *partial* proof in the sense of
        Definition 4.3 — and are eligible as (Subst) lemmas.
        """
        attempt = _ProofAttempt(self.program, self.config)
        return attempt.run(equation, goal_name, hypotheses=hypotheses)

    def prove_goal(self, goal: Goal, hypotheses: Sequence[Equation] = ()) -> ProofResult:
        """Attempt to prove a named goal; conditional goals fail as out of scope."""
        if goal.is_conditional:
            return ProofResult(
                proved=False,
                equation=goal.equation,
                reason="conditional goal: out of scope for the unconditional proof system",
                goal_name=goal.name,
            )
        return self.prove(goal.equation, goal_name=goal.name, hypotheses=hypotheses)


def prove(program: Program, equation: Equation, config: Optional[ProverConfig] = None) -> ProofResult:
    """Convenience wrapper: prove one equation over ``program``."""
    return Prover(program, config).prove(equation)


def prove_goal(program: Program, goal: Goal, config: Optional[ProverConfig] = None) -> ProofResult:
    """Convenience wrapper: prove one named goal over ``program``."""
    return Prover(program, config).prove_goal(goal)


class _ProofAttempt:
    """The mutable state of a single proof attempt."""

    def __init__(self, program: Program, config: ProverConfig):
        self.program = program
        self.config = config
        self.proof = Preproof()
        self.closure = IncrementalClosure()
        self.normalizer = Normalizer(program.rules)
        self.fresh = FreshNameSupply()
        self.stats = SearchStatistics()
        self.trail: List[Tuple] = []
        self.deadline: Optional[float] = None

    # -- entry point -----------------------------------------------------------

    def run(
        self,
        equation: Equation,
        goal_name: str = "",
        hypotheses: Sequence[Equation] = (),
    ) -> ProofResult:
        start = time.perf_counter()
        if self.config.timeout is not None:
            # The deadline lives on the monotonic clock: it must never jump
            # (perf_counter is monotonic too, but monotonic() is the documented
            # wall-clock-independent choice and what the engine's scheduler
            # compares against for its hard kills).
            self.deadline = time.monotonic() + self.config.timeout
        self.fresh.reserve(equation.variable_names())
        reason = ""
        try:
            for hypothesis in hypotheses:
                node = self._add_node(hypothesis)
                self._assign(node, RULE_HYP)
            premise, work = self._add_goal(equation)
            self.proof.root = premise
            proved = self._solve(work, depth=0, case_depth=0, path_goals=frozenset())
        except _Budget as budget:
            proved = False
            reason = str(budget) or "search budget exhausted"
        self.stats.elapsed_seconds = time.perf_counter() - start
        self.stats.closure_compositions = self.closure.compositions_performed
        self.stats.normalizer_hits = self.normalizer.cache_hits
        self.stats.normalizer_misses = self.normalizer.cache_misses
        if proved:
            return ProofResult(
                proved=True,
                equation=equation,
                proof=self.proof,
                statistics=self.stats,
                goal_name=goal_name,
            )
        return ProofResult(
            proved=False,
            equation=equation,
            proof=None,
            statistics=self.stats,
            reason=reason or "no proof found within the search bounds",
            goal_name=goal_name,
        )

    # -- budget ------------------------------------------------------------------

    def _check_budget(self) -> None:
        if self.stats.nodes_created > self.config.max_nodes:
            self.stats.node_budget_aborts += 1
            raise _Budget(f"node budget of {self.config.max_nodes} exhausted")
        if self.deadline is not None and time.monotonic() > self.deadline:
            self.stats.timeout_aborts += 1
            raise _Budget(f"timeout of {self.config.timeout}s exceeded")

    # -- trail (chronological backtracking) -----------------------------------------

    def _mark(self) -> int:
        return len(self.trail)

    def _rollback(self, mark: int) -> None:
        while len(self.trail) > mark:
            kind, payload = self.trail.pop()
            if kind == "node":
                self.proof.remove_node(payload)
            elif kind == "closure":
                self.closure.remove(payload)
            elif kind == "assign":
                node = self.proof.node(payload)
                node.rule = None
                node.premises = []
                node.case_var = None
                node.case_constructors = ()
                node.subst = None
                node.position = None
                node.side = None
                node.lemma_flipped = False

    # -- node and edge management -----------------------------------------------------

    def _normalize_equation(self, equation: Equation) -> Equation:
        return Equation(
            self.normalizer.normalize(equation.lhs),
            self.normalizer.normalize(equation.rhs),
        )

    def _add_node(self, equation: Equation) -> ProofNode:
        self._check_budget()
        node = self.proof.add_node(equation)
        self.stats.nodes_created += 1
        self.trail.append(("node", node.ident))
        self.fresh.reserve(equation.variable_names())
        return node

    def _add_goal(self, equation: Equation) -> Tuple[int, int]:
        """Create nodes for a new subgoal.

        Returns ``(premise_id, work_id)``: the vertex the parent should use as
        its premise, and the vertex carrying the normalised equation the search
        should continue on.  When normalisation changes the equation an
        explicit (Reduce) vertex is interposed, exactly as in the formal system
        (the paper merely omits such vertices when *displaying* proofs).
        """
        node = self._add_node(equation)
        normalized = self._normalize_equation(equation)
        if normalized == equation:
            return node.ident, node.ident
        child = self._add_node(normalized)
        self._assign(node, RULE_REDUCE, premises=[child.ident])
        if not self._add_edges(node):
            # Identity edges cannot invalidate the proof; defensive only.
            raise _Budget("soundness violation on a reduction edge")
        return node.ident, child.ident

    def _assign(self, node: ProofNode, rule: str, premises: Sequence[int] = (), **data) -> None:
        node.rule = rule
        node.premises = list(premises)
        for key, value in data.items():
            setattr(node, key, value)
        self.trail.append(("assign", node.ident))

    def _add_edges(self, node: ProofNode) -> bool:
        """Register the size-change graphs of all edges out of ``node``.

        Returns ``False`` (after recording nothing further) when a newly closed
        cycle violates the global condition; the caller is expected to roll the
        whole alternative back.
        """
        self.stats.soundness_checks += 1
        if self.config.incremental_soundness:
            for index in range(len(node.premises)):
                graph = edge_size_change_graph(self.proof, node.ident, index)
                result = self.closure.add(graph)
                self.trail.append(("closure", result.added))
                if result.violation is not None:
                    self.stats.soundness_violations += 1
                    return False
            return True
        # Naive mode (ablation): rebuild all edge graphs and recheck from scratch.
        graphs = proof_size_change_graphs(self.proof)
        if not check_global_condition(graphs):
            self.stats.soundness_violations += 1
            return False
        return True

    # -- the search ----------------------------------------------------------------------

    def _solve(self, node_id: int, depth: int, case_depth: int, path_goals: frozenset) -> bool:
        self._check_budget()
        self.stats.max_depth_reached = max(self.stats.max_depth_reached, depth)
        node = self.proof.node(node_id)
        equation = node.equation

        # (Refl)
        if equation.is_trivial():
            self._assign(node, RULE_REFL)
            return True

        lhs_head, lhs_args = spine(equation.lhs)
        rhs_head, rhs_args = spine(equation.rhs)
        lhs_is_con = isinstance(lhs_head, Sym) and self.program.signature.is_constructor(lhs_head.name)
        rhs_is_con = isinstance(rhs_head, Sym) and self.program.signature.is_constructor(rhs_head.name)

        # Distinct constructors can never be equal: the branch is hopeless.
        if lhs_is_con and rhs_is_con and lhs_head.name != rhs_head.name:
            return False

        # (Cong) — constructor decomposition, applied eagerly without backtracking.
        if (
            self.config.use_congruence
            and lhs_is_con
            and rhs_is_con
            and lhs_head.name == rhs_head.name
            and len(lhs_args) == len(rhs_args)
            and lhs_args
        ):
            return self._apply_congruence(node, lhs_args, rhs_args, depth, case_depth, path_goals)

        # (FunExt) — goals of arrow type are applied to a fresh variable.
        if self.config.use_funext:
            goal_type = self._goal_type(equation)
            if isinstance(goal_type, FunTy):
                return self._apply_funext(node, goal_type, depth, case_depth, path_goals)

        if depth >= self.config.max_depth:
            return False
        if equation in path_goals:
            return False
        extended_path = path_goals | {equation}

        # (Subst) — cycle formation through existing nodes of the proof.
        if self.config.lemma_restriction != LEMMAS_NONE:
            if self._apply_subst(node, depth, case_depth, extended_path):
                return True

        # (Case) — analysis of a variable blocking reduction.
        if case_depth < self.config.max_case_splits:
            if self._apply_case(node, depth, case_depth, extended_path):
                return True

        return False

    # -- eager rules -------------------------------------------------------------------------

    def _apply_congruence(
        self,
        node: ProofNode,
        lhs_args: Tuple[Term, ...],
        rhs_args: Tuple[Term, ...],
        depth: int,
        case_depth: int,
        path_goals: frozenset,
    ) -> bool:
        mark = self._mark()
        self.stats.congruence_steps += 1
        premise_ids: List[int] = []
        work_ids: List[int] = []
        for left, right in zip(lhs_args, rhs_args):
            premise, work = self._add_goal(Equation(left, right))
            premise_ids.append(premise)
            work_ids.append(work)
        self._assign(node, RULE_CONG, premises=premise_ids)
        if not self._add_edges(node):
            self._rollback(mark)
            return False
        for work in work_ids:
            if not self._solve(work, depth, case_depth, path_goals):
                self._rollback(mark)
                return False
        return True

    def _apply_funext(
        self,
        node: ProofNode,
        goal_type: FunTy,
        depth: int,
        case_depth: int,
        path_goals: frozenset,
    ) -> bool:
        mark = self._mark()
        self.stats.funext_steps += 1
        fresh_var = Var(self.fresh.fresh("v"), goal_type.arg)
        extended = Equation(App(node.equation.lhs, fresh_var), App(node.equation.rhs, fresh_var))
        premise, work = self._add_goal(extended)
        self._assign(node, RULE_FUNEXT, premises=[premise])
        if not self._add_edges(node):
            self._rollback(mark)
            return False
        if self._solve(work, depth, case_depth, path_goals):
            return True
        self._rollback(mark)
        return False

    def _goal_type(self, equation: Equation):
        try:
            return self.program.signature.infer_type(equation.lhs)
        except Exception:
            return None

    # -- (Subst) ---------------------------------------------------------------------------------

    def _lemma_candidates(self, current: int) -> List[ProofNode]:
        restriction = self.config.lemma_restriction
        candidates: List[ProofNode] = []
        for candidate in self.proof.nodes:
            if candidate.ident == current or candidate.is_open:
                continue
            if candidate.rule == RULE_HYP:
                # Externally supplied lemmas are always eligible.
                candidates.append(candidate)
                continue
            if restriction == LEMMAS_CASE_ONLY and candidate.rule != RULE_CASE:
                continue
            if restriction == LEMMAS_ALL and candidate.rule in (RULE_REFL,):
                continue
            if candidate.equation.is_trivial():
                continue
            candidates.append(candidate)
        # Most recent first: the nearest enclosing case split is the most
        # likely induction hypothesis.
        candidates.sort(key=lambda n: n.ident, reverse=True)
        return candidates

    def _apply_subst(self, node: ProofNode, depth: int, case_depth: int, path_goals: frozenset) -> bool:
        equation = node.equation
        attempts = 0
        for lemma_node in self._lemma_candidates(node.ident):
            self._check_budget()
            lemma = lemma_node.equation
            orientations = (
                (lemma.lhs, lemma.rhs, False),
                (lemma.rhs, lemma.lhs, True),
            )
            for lemma_from, lemma_to, flipped in orientations:
                if isinstance(lemma_from, Var):
                    continue
                missing = {
                    v.name for v in free_vars(lemma_to)
                } - {v.name for v in free_vars(lemma_from)}
                if missing:
                    continue
                # A symbol-headed lemma side can only match subterms with the
                # same head symbol and spine length; both are cached on the
                # interned nodes, so the position scan prunes in O(1) per
                # subterm without invoking the matcher.
                lemma_head = lemma_from._head
                lemma_nargs = lemma_from._nargs
                for side_name in ("lhs", "rhs"):
                    self._check_budget()
                    goal_side = getattr(equation, side_name)
                    other_side = equation.rhs if side_name == "lhs" else equation.lhs
                    for position, sub in positions(goal_side):
                        if isinstance(sub, Var):
                            continue
                        if lemma_head is not None and (
                            sub._head != lemma_head or sub._nargs != lemma_nargs
                        ):
                            continue
                        theta = match_or_none(lemma_from, sub)
                        if theta is None:
                            continue
                        attempts += 1
                        if attempts > self.config.max_subst_applications_per_goal:
                            return False
                        if self._try_subst(
                            node,
                            lemma_node,
                            theta,
                            position,
                            side_name,
                            flipped,
                            lemma_to,
                            depth,
                            case_depth,
                            path_goals,
                        ):
                            return True
        return False

    def _try_subst(
        self,
        node: ProofNode,
        lemma_node: ProofNode,
        theta: Substitution,
        position: Position,
        side_name: str,
        flipped: bool,
        lemma_to: Term,
        depth: int,
        case_depth: int,
        path_goals: frozenset,
    ) -> bool:
        self.stats.subst_attempts += 1
        equation = node.equation
        goal_side = getattr(equation, side_name)
        other_side = equation.rhs if side_name == "lhs" else equation.lhs
        rewritten = replace_at(goal_side, position, theta.apply(lemma_to))
        continuation = (
            Equation(rewritten, other_side) if side_name == "lhs" else Equation(other_side, rewritten)
        )
        if term_size(continuation.lhs) + term_size(continuation.rhs) > self.config.max_goal_size:
            return False  # rewriting grew the goal beyond the configured bound
        if self._normalize_equation(continuation) == equation:
            return False  # no progress: the rewrite did not change the goal
        mark = self._mark()
        premise, work = self._add_goal(continuation)
        self._assign(
            node,
            RULE_SUBST,
            premises=[lemma_node.ident, premise],
            subst=theta.restrict(lemma_node.equation.variable_names()),
            position=position,
            side=side_name,
            lemma_flipped=flipped,
        )
        if not self._add_edges(node):
            self._rollback(mark)
            return False
        if self._solve(work, depth + 1, case_depth, path_goals):
            return True
        self._rollback(mark)
        return False

    # -- (Case) --------------------------------------------------------------------------------------

    def _apply_case(self, node: ProofNode, depth: int, case_depth: int, path_goals: frozenset) -> bool:
        equation = node.equation
        candidates = case_candidates(self.program.rules, equation.lhs, equation.rhs)
        for variable in candidates:
            if self._try_case(node, variable, depth, case_depth, path_goals):
                return True
        return False

    def _try_case(
        self, node: ProofNode, variable: Var, depth: int, case_depth: int, path_goals: frozenset
    ) -> bool:
        if not isinstance(variable.ty, DataTy):
            return False
        try:
            constructors = self.program.signature.instantiate_constructors(variable.ty)
        except Exception:
            return False
        mark = self._mark()
        self.stats.case_splits += 1
        premise_ids: List[int] = []
        work_ids: List[int] = []
        constructor_names: List[str] = []
        for con_name, arg_types in constructors:
            fresh_vars = [
                Var(self.fresh.fresh(variable.name), arg_type) for arg_type in arg_types
            ]
            pattern = apply_term(Sym(con_name), *fresh_vars)
            instantiated = node.equation.apply(Substitution({variable.name: pattern}))
            premise, work = self._add_goal(instantiated)
            premise_ids.append(premise)
            work_ids.append(work)
            constructor_names.append(con_name)
        self._assign(
            node,
            RULE_CASE,
            premises=premise_ids,
            case_var=variable,
            case_constructors=tuple(constructor_names),
        )
        if not self._add_edges(node):
            self._rollback(mark)
            return False
        for work in work_ids:
            if not self._solve(work, depth + 1, case_depth + 1, path_goals):
                self._rollback(mark)
                return False
        return True
