"""The CycleQ prover: goal-directed cyclic proof search (Section 6).

The prover searches with the rule priority of the paper: reduction,
reflexivity, congruence (constructor decomposition), function extensionality,
substitution, case analysis.  The first four always simplify the goal and are
applied eagerly without backtracking; (Subst) and (Case) are backtracking
choice points.

The search itself runs on the explicit-agenda core of
:mod:`repro.search.agenda`: every goal is a :class:`~repro.search.agenda.Frame`
on an explicit stack, rule instances are streamed as alternatives, and a
:class:`~repro.search.agenda.SearchStrategy` (``ProverConfig.strategy``)
decides the order in which alternatives and AND-subgoals are pursued.  The
default ``dfs`` strategy expands nodes in exactly the order of the original
recursive implementation — but no code path recurses per proof node, so deep
case splits and congruence chains cannot hit Python's recursion limit.

Cycle formation is mediated by (Subst) used as a matching function: the lemma
of every (Subst) instance is an *existing node of the proof under
construction*, restricted by default to (Case)-justified nodes (the redundancy
eliminations of Section 5.1).  Global correctness is enforced during the search
by annotating every edge with its size-change graph and maintaining the closure
incrementally (Section 5.2): the moment a newly formed cycle admits no
infinitely progressing variable trace, the branch is pruned.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.equations import Equation
from ..core.matching import match_or_none
from ..core.substitution import Substitution
from ..core.terms import (
    App,
    FreshNameSupply,
    Position,
    Sym,
    Term,
    Var,
    apply_term,
    free_vars,
    positions,
    replace_at,
    spine,
    term_size,
)
from ..core.types import DataTy, FunTy
from ..program import Goal, Program
from ..proofs.preproof import (
    RULE_CASE,
    RULE_CONG,
    RULE_FUNEXT,
    RULE_HYP,
    RULE_REDUCE,
    RULE_REFL,
    RULE_SUBST,
    Preproof,
    ProofNode,
)
from ..proofs.soundness import edge_size_change_graph, proof_size_change_graphs
from ..rewriting.narrowing import case_candidates
from ..rewriting.reduction import Normalizer
from ..sizechange.closure import IncrementalClosure, check_global_condition
from .agenda import (
    Alternative,
    BudgetExhausted,
    Frame,
    SearchBudget,
    get_strategy,
    run_choice_points,
)
from .config import LEMMAS_ALL, LEMMAS_CASE_ONLY, LEMMAS_NONE, ProverConfig
from .phases import PhaseClock
from .result import ProofResult, SearchStatistics

__all__ = ["Prover", "prove", "prove_goal"]


class Prover:
    """A reusable prover bound to one program and one configuration."""

    def __init__(self, program: Program, config: Optional[ProverConfig] = None):
        self.program = program
        self.config = config or ProverConfig()
        self.config.validate()

    # -- public API ----------------------------------------------------------

    def prove(
        self,
        equation: Equation,
        goal_name: str = "",
        hypotheses: Sequence[Equation] = (),
        budget: Optional[SearchBudget] = None,
    ) -> ProofResult:
        """Attempt to prove a single (unconditional) equation.

        ``hypotheses`` are externally supplied lemmas (e.g. produced by a theory
        exploration tool, a human hint, or the rewriting-induction translation
        of Section 4).  They become unjustified hypothesis vertices of the
        preproof — the result is then a *partial* proof in the sense of
        Definition 4.3 — and are eligible as (Subst) lemmas.

        ``budget`` is an optional outer :class:`SearchBudget` (e.g. the theory
        explorer's whole-phase budget); the attempt aborts when either it or
        the configuration's own timeout expires.

        With :attr:`~repro.search.config.ProverConfig.falsify_first` the goal
        is first tested on ground instances through the compiled evaluator; a
        refuted goal returns a ``disproved`` result (with its counterexample)
        without entering search, and the falsification cost is charged to the
        result's statistics either way.
        """
        falsify_seconds = 0.0
        falsify_instances = 0
        if self.config.falsify_first:
            from ..semantics.falsify import FalsificationConfig, falsify_equation

            # The pre-pass honours the attempt's own wall-clock budget: a
            # slow falsification must degrade to "fewer instances tested",
            # never to an attempt that overruns its configured timeout.
            falsified = falsify_equation(
                self.program,
                equation,
                config=FalsificationConfig(timeout=self.config.timeout),
                goal_name=goal_name,
            )
            falsify_seconds = falsified.seconds
            falsify_instances = falsified.instances_tested
            if falsified.counterexample is not None:
                statistics = SearchStatistics(
                    strategy=self.config.strategy,
                    elapsed_seconds=falsified.seconds,
                    falsification_seconds=falsify_seconds,
                    falsification_instances=falsify_instances,
                    phase_seconds={"falsify": falsify_seconds},
                )
                return ProofResult(
                    proved=False,
                    disproved=True,
                    equation=equation,
                    counterexample=falsified.counterexample,
                    statistics=statistics,
                    reason="counterexample found by ground testing",
                    goal_name=goal_name,
                )
        limit = self.config.max_hints
        if limit is not None and len(hypotheses) > limit:
            # Earlier hints win: callers rank their lemmas before offering.
            hypotheses = tuple(hypotheses)[:limit]
        attempt = _ProofAttempt(self.program, self.config)
        result = attempt.run(equation, goal_name, hypotheses=hypotheses, budget=budget)
        result.statistics.falsification_seconds = falsify_seconds
        result.statistics.falsification_instances = falsify_instances
        if falsify_seconds:
            result.statistics.phase_seconds["falsify"] = falsify_seconds
        return result

    def prove_goal(self, goal: Goal, hypotheses: Sequence[Equation] = ()) -> ProofResult:
        """Attempt to prove a named goal; conditional goals fail as out of scope.

        A conditional goal cannot be *proved* by the unconditional proof
        system, but with ``falsify_first`` it can still be **disproved**: the
        falsifier tests instances on which every premise holds, so a
        counterexample genuinely refutes the implication.
        """
        if goal.is_conditional:
            if self.config.falsify_first:
                from ..semantics.falsify import FalsificationConfig, falsify_goal

                falsified = falsify_goal(
                    self.program,
                    goal,
                    FalsificationConfig(timeout=self.config.timeout),
                )
                if falsified.counterexample is not None:
                    statistics = SearchStatistics(
                        strategy=self.config.strategy,
                        elapsed_seconds=falsified.seconds,
                        falsification_seconds=falsified.seconds,
                        falsification_instances=falsified.instances_tested,
                        phase_seconds={"falsify": falsified.seconds},
                    )
                    return ProofResult(
                        proved=False,
                        disproved=True,
                        equation=goal.equation,
                        counterexample=falsified.counterexample,
                        statistics=statistics,
                        reason="counterexample found by ground testing",
                        goal_name=goal.name,
                    )
            return ProofResult(
                proved=False,
                equation=goal.equation,
                reason="conditional goal: out of scope for the unconditional proof system",
                goal_name=goal.name,
            )
        return self.prove(goal.equation, goal_name=goal.name, hypotheses=hypotheses)


def prove(program: Program, equation: Equation, config: Optional[ProverConfig] = None) -> ProofResult:
    """Convenience wrapper: prove one equation over ``program``."""
    return Prover(program, config).prove(equation)


def prove_goal(program: Program, goal: Goal, config: Optional[ProverConfig] = None) -> ProofResult:
    """Convenience wrapper: prove one named goal over ``program``."""
    return Prover(program, config).prove_goal(goal)


class _ProofAttempt:
    """The mutable state of a single proof attempt.

    Implements the *calculus* protocol of
    :func:`repro.search.agenda.run_choice_points`: :meth:`expand` applies the
    eager rules and streams the backtracking alternatives of a goal,
    :meth:`apply_alternative` tries one (Subst)/(Case)/(Cong)/(FunExt)
    instance, and :meth:`mark`/:meth:`rollback` expose the chronological
    trail the engine unwinds failed alternatives with.
    """

    def __init__(self, program: Program, config: ProverConfig):
        self.program = program
        self.config = config
        self.proof = Preproof()
        self.closure = IncrementalClosure()
        self.normalizer = Normalizer(program.rules, compile_rules=config.compile_rules)
        self.fresh = FreshNameSupply()
        self.stats = SearchStatistics()
        self.clock = PhaseClock()
        self.trail: List[Tuple] = []
        self.budget = SearchBudget()
        self.external_budget: Optional[SearchBudget] = None
        self.case_bound = config.max_case_splits

    # -- entry point -----------------------------------------------------------

    def run(
        self,
        equation: Equation,
        goal_name: str = "",
        hypotheses: Sequence[Equation] = (),
        budget: Optional[SearchBudget] = None,
    ) -> ProofResult:
        start = time.perf_counter()
        strategy = get_strategy(self.config.strategy)
        self.stats.strategy = strategy.name
        # The deadline lives on the monotonic clock (via SearchBudget): it must
        # never jump, and it is what the engine's scheduler compares its hard
        # kills against.
        self.budget = SearchBudget(timeout=self.config.timeout)
        self.external_budget = budget
        self.fresh.reserve(equation.variable_names())
        reason = ""
        proved = False
        # "agenda" is the attempt's base phase: whatever the engine's frame
        # loop and the eager rules do between the specifically instrumented
        # phases is charged here (the phase accounting is exclusive).
        self.clock.push("agenda")
        try:
            bounds = strategy.case_bounds(self.config) or (self.config.max_case_splits,)
            for iteration, bound in enumerate(bounds):
                self.case_bound = bound
                self.stats.iterations += 1
                base_mark = self.mark()
                for hypothesis in hypotheses:
                    node = self._add_node(hypothesis)
                    self._assign(node, RULE_HYP)
                premise, work = self._add_goal(equation)
                self.proof.root = premise
                proved = run_choice_points(
                    self, Frame(work, 0, 0, frozenset()), strategy, self.stats
                )
                if proved:
                    break
                if iteration + 1 < len(bounds):
                    # Iterative deepening: restart from a clean proof.  Every
                    # mutation is on the trail, so one rollback resets the
                    # preproof, the closure, and the root.
                    self.rollback(base_mark)
                    self.proof.root = None
        except BudgetExhausted as budget_error:
            proved = False
            reason = str(budget_error) or "search budget exhausted"
        finally:
            self.clock.pop()
        self.stats.elapsed_seconds = time.perf_counter() - start
        self.stats.phase_seconds = self.clock.snapshot()
        self.stats.phase_counts = dict(self.clock.counts)
        self.stats.closure_compositions = self.closure.compositions_performed
        self.stats.normalizer_hits = self.normalizer.cache_hits
        self.stats.normalizer_misses = self.normalizer.cache_misses
        self.stats.compile_seconds = self.normalizer.compile_seconds
        self.stats.compiled_steps = self.normalizer.compiled_steps
        self.stats.fallback_steps = self.normalizer.fallback_steps
        self.stats.rewrite_head_counts = dict(self.normalizer.head_steps)
        self.stats.hints_offered = len(hypotheses)
        if proved and hypotheses:
            # How much did the final proof lean on the supplied hypotheses?  A
            # (Subst) vertex records its lemma as the first premise; count the
            # ones whose lemma is a Hyp vertex.
            rules = {node.ident: node.rule for node in self.proof.nodes}
            self.stats.hint_steps = sum(
                1
                for node in self.proof.nodes
                if node.rule == RULE_SUBST
                and node.premises
                and rules.get(node.premises[0]) == RULE_HYP
            )
        if proved:
            certificate = None
            if self.config.emit_proofs:
                from ..proofs.certificate import encode  # deferred: success path only

                encode_started = time.perf_counter()
                certificate = encode(
                    self.proof,
                    program_fingerprint=self.program.fingerprint(),
                    goal_name=goal_name,
                    equation=str(equation),
                )
                self.stats.certificate_seconds = time.perf_counter() - encode_started
            return ProofResult(
                proved=True,
                equation=equation,
                proof=self.proof,
                certificate=certificate,
                statistics=self.stats,
                goal_name=goal_name,
            )
        return ProofResult(
            proved=False,
            equation=equation,
            proof=None,
            statistics=self.stats,
            reason=reason or "no proof found within the search bounds",
            goal_name=goal_name,
        )

    # -- budget ------------------------------------------------------------------

    def _check_budget(self) -> None:
        if self.stats.nodes_created > self.config.max_nodes:
            self.stats.node_budget_aborts += 1
            raise BudgetExhausted(f"node budget of {self.config.max_nodes} exhausted")
        try:
            self.budget.check()
            if self.external_budget is not None:
                self.external_budget.check()
        except BudgetExhausted:
            self.stats.timeout_aborts += 1
            raise

    # -- trail (chronological backtracking) -----------------------------------------

    def mark(self) -> int:
        return len(self.trail)

    def rollback(self, mark: int) -> None:
        clock = self.clock
        while len(self.trail) > mark:
            kind, payload = self.trail.pop()
            if kind == "node":
                self.proof.remove_node(payload)
            elif kind == "closure":
                clock.push("soundness")
                self.closure.remove(payload)
                clock.pop()
            elif kind == "assign":
                node = self.proof.node(payload)
                node.rule = None
                node.premises = []
                node.case_var = None
                node.case_constructors = ()
                node.subst = None
                node.position = None
                node.side = None
                node.lemma_flipped = False

    # -- node and edge management -----------------------------------------------------

    def _normalize_equation(self, equation: Equation) -> Equation:
        self.clock.push("normalise")
        try:
            return Equation(
                self.normalizer.normalize(equation.lhs),
                self.normalizer.normalize(equation.rhs),
            )
        finally:
            self.clock.pop()

    def _add_node(self, equation: Equation) -> ProofNode:
        self._check_budget()
        node = self.proof.add_node(equation)
        self.stats.nodes_created += 1
        self.trail.append(("node", node.ident))
        self.fresh.reserve(equation.variable_names())
        return node

    def _add_goal(self, equation: Equation) -> Tuple[int, int]:
        """Create nodes for a new subgoal.

        Returns ``(premise_id, work_id)``: the vertex the parent should use as
        its premise, and the vertex carrying the normalised equation the search
        should continue on.  When normalisation changes the equation an
        explicit (Reduce) vertex is interposed, exactly as in the formal system
        (the paper merely omits such vertices when *displaying* proofs).
        """
        node = self._add_node(equation)
        normalized = self._normalize_equation(equation)
        if normalized == equation:
            return node.ident, node.ident
        child = self._add_node(normalized)
        self._assign(node, RULE_REDUCE, premises=[child.ident])
        if not self._add_edges(node):
            # Identity edges cannot invalidate the proof; defensive only.
            raise BudgetExhausted("soundness violation on a reduction edge")
        return node.ident, child.ident

    def _assign(self, node: ProofNode, rule: str, premises: Sequence[int] = (), **data) -> None:
        node.rule = rule
        node.premises = list(premises)
        for key, value in data.items():
            setattr(node, key, value)
        self.trail.append(("assign", node.ident))

    def _add_edges(self, node: ProofNode) -> bool:
        """Register the size-change graphs of all edges out of ``node``.

        Returns ``False`` (after recording nothing further) when a newly closed
        cycle violates the global condition; the caller is expected to roll the
        whole alternative back.
        """
        self.stats.soundness_checks += 1
        self.clock.push("soundness")
        try:
            if self.config.incremental_soundness:
                for index in range(len(node.premises)):
                    graph = edge_size_change_graph(self.proof, node.ident, index)
                    result = self.closure.add(graph)
                    self.trail.append(("closure", result.added))
                    if result.violation is not None:
                        self.stats.soundness_violations += 1
                        return False
                return True
            # Naive mode (ablation): rebuild all edge graphs and recheck from scratch.
            graphs = proof_size_change_graphs(self.proof)
            if not check_global_condition(graphs):
                self.stats.soundness_violations += 1
                return False
            return True
        finally:
            self.clock.pop()

    def _child(self, work_id: int, depth: int, case_depth: int, path_goals: frozenset) -> Frame:
        equation = self.proof.node(work_id).equation
        return Frame(
            work_id, depth, case_depth, path_goals,
            score=term_size(equation.lhs) + term_size(equation.rhs),
        )

    # -- the calculus protocol (driven by agenda.run_choice_points) ---------------------

    def expand(self, frame: Frame) -> Optional[bool]:
        """Eager rules and hopeless-goal pruning; streams the alternatives.

        Mirrors the prologue of the old recursive ``_solve``: (Refl),
        constructor clash, (Cong) and (FunExt) — which never backtrack and
        therefore resolve to a single mandatory alternative — then the depth
        and loop checks guarding the (Subst)/(Case) choice points.
        """
        self._check_budget()
        self.clock.push("expand")
        try:
            return self._expand(frame)
        finally:
            self.clock.pop()

    def _expand(self, frame: Frame) -> Optional[bool]:
        if frame.depth > self.stats.max_depth_reached:
            self.stats.max_depth_reached = frame.depth
        node = self.proof.node(frame.node_id)
        equation = node.equation

        # (Refl)
        if equation.is_trivial():
            self._assign(node, RULE_REFL)
            return True

        lhs_head, lhs_args = spine(equation.lhs)
        rhs_head, rhs_args = spine(equation.rhs)
        lhs_is_con = isinstance(lhs_head, Sym) and self.program.signature.is_constructor(lhs_head.name)
        rhs_is_con = isinstance(rhs_head, Sym) and self.program.signature.is_constructor(rhs_head.name)

        # Distinct constructors can never be equal: the branch is hopeless.
        if lhs_is_con and rhs_is_con and lhs_head.name != rhs_head.name:
            return False

        # (Cong) — constructor decomposition, applied eagerly without backtracking.
        if (
            self.config.use_congruence
            and lhs_is_con
            and rhs_is_con
            and lhs_head.name == rhs_head.name
            and len(lhs_args) == len(rhs_args)
            and lhs_args
        ):
            frame.alts = iter((Alternative("cong", (lhs_args, rhs_args), 0),))
            return None

        # (FunExt) — goals of arrow type are applied to a fresh variable.
        if self.config.use_funext:
            goal_type = self._goal_type(equation)
            if isinstance(goal_type, FunTy):
                frame.alts = iter((Alternative("funext", goal_type, 0),))
                return None

        if frame.depth >= self.config.max_depth:
            return False
        if equation in frame.path_goals:
            return False

        frame.alts = self._clocked(self._rule_alternatives(node, frame), "lemma_prefilter")
        return None

    def _clocked(self, iterator: Iterator, phase: str) -> Iterator:
        """Charge the time each ``next()`` of ``iterator`` takes to ``phase``.

        The alternative stream is lazy — the agenda pulls it one instance at a
        time between child solves — so its cost cannot be measured around the
        call site; this wrapper clocks every resumption of the generator
        instead.  (The inner ``match`` phase of ``_subst_candidates`` nests
        inside and is subtracted by the clock's exclusive accounting.)
        """
        push = self.clock.push
        pop = self.clock.pop
        while True:
            push(phase)
            try:
                item = next(iterator)
            except StopIteration:
                return
            finally:
                pop()
            yield item

    def _rule_alternatives(self, node: ProofNode, frame: Frame) -> Iterator[Alternative]:
        """The backtracking alternatives of a goal, lazily, in calculus order.

        (Subst) instances first — cycle formation through existing proof nodes
        — then (Case) splits, exactly the priority of the recursive search.
        The stream is lazy so that under ``dfs`` candidate matching interleaves
        with child solving precisely as it used to; ordering strategies may
        materialise it.
        """
        seq = 0
        if self.config.lemma_restriction != LEMMAS_NONE:
            for data in self._subst_candidates(node):
                yield Alternative("subst", data, seq)
                seq += 1
        # The *iteration's* case bound, not the configuration's: iterative
        # deepening tightens it round by round.
        if frame.case_depth < self.case_bound:
            equation = node.equation
            for variable in case_candidates(self.program.rules, equation.lhs, equation.rhs):
                yield Alternative("case", variable, seq)
                seq += 1

    def apply_alternative(self, frame: Frame, alt: Alternative) -> Optional[Sequence[Frame]]:
        """Try one rule instance; returns its AND-children or ``None``.

        ``None`` means the alternative did not apply (size bound, no progress,
        or an unsound cycle) and any partial state was rolled back to
        ``frame.alt_mark``; otherwise the goal's node has been justified and
        the returned subgoal frames must all be solved for it to stand.
        """
        if alt.kind == "subst":
            return self._apply_subst_alternative(frame, alt.data)
        if alt.kind == "case":
            return self._apply_case_alternative(frame, alt.data)
        if alt.kind == "cong":
            return self._apply_cong_alternative(frame, alt.data)
        if alt.kind == "funext":
            return self._apply_funext_alternative(frame, alt.data)
        raise ValueError(f"unknown alternative kind {alt.kind!r}")  # pragma: no cover

    def score_alternative(self, frame: Frame, alt: Alternative) -> int:
        """A heuristic cost for ordering strategies (smaller = more promising).

        (Subst) alternatives score the size of the *normalised* continuation
        goal — how close the rewrite brings the goal to a normal form; (Case)
        alternatives score the goal size plus a constant split penalty, so a
        simplifying rewrite always outranks a case split of the same goal.
        The eager rules are mandatory and score 0.
        """
        if alt.kind == "subst":
            node = self.proof.node(frame.node_id)
            continuation = self._subst_continuation(node.equation, alt.data)
            normalized = self._normalize_equation(continuation)
            return term_size(normalized.lhs) + term_size(normalized.rhs)
        if alt.kind == "case":
            equation = self.proof.node(frame.node_id).equation
            return term_size(equation.lhs) + term_size(equation.rhs) + 2
        return 0

    # -- eager rules -------------------------------------------------------------------------

    def _apply_cong_alternative(
        self, frame: Frame, data: Tuple[Tuple[Term, ...], Tuple[Term, ...]]
    ) -> Optional[Sequence[Frame]]:
        lhs_args, rhs_args = data
        node = self.proof.node(frame.node_id)
        self.stats.congruence_steps += 1
        premise_ids: List[int] = []
        work_ids: List[int] = []
        for left, right in zip(lhs_args, rhs_args):
            premise, work = self._add_goal(Equation(left, right))
            premise_ids.append(premise)
            work_ids.append(work)
        self._assign(node, RULE_CONG, premises=premise_ids)
        if not self._add_edges(node):
            self.rollback(frame.alt_mark)
            return None
        return [
            self._child(work, frame.depth, frame.case_depth, frame.path_goals)
            for work in work_ids
        ]

    def _apply_funext_alternative(self, frame: Frame, goal_type: FunTy) -> Optional[Sequence[Frame]]:
        node = self.proof.node(frame.node_id)
        self.stats.funext_steps += 1
        fresh_var = Var(self.fresh.fresh("v"), goal_type.arg)
        extended = Equation(App(node.equation.lhs, fresh_var), App(node.equation.rhs, fresh_var))
        premise, work = self._add_goal(extended)
        self._assign(node, RULE_FUNEXT, premises=[premise])
        if not self._add_edges(node):
            self.rollback(frame.alt_mark)
            return None
        return [self._child(work, frame.depth, frame.case_depth, frame.path_goals)]

    def _goal_type(self, equation: Equation):
        try:
            return self.program.signature.infer_type(equation.lhs)
        except Exception:
            return None

    # -- (Subst) ---------------------------------------------------------------------------------

    def _lemma_candidates(self, current: int) -> List[ProofNode]:
        restriction = self.config.lemma_restriction
        candidates: List[ProofNode] = []
        for candidate in self.proof.nodes:
            if candidate.ident == current or candidate.is_open:
                continue
            if candidate.rule == RULE_HYP:
                # Externally supplied lemmas are always eligible.
                candidates.append(candidate)
                continue
            if restriction == LEMMAS_CASE_ONLY and candidate.rule != RULE_CASE:
                continue
            if restriction == LEMMAS_ALL and candidate.rule in (RULE_REFL,):
                continue
            if candidate.equation.is_trivial():
                continue
            candidates.append(candidate)
        # Most recent first: the nearest enclosing case split is the most
        # likely induction hypothesis.
        candidates.sort(key=lambda n: n.ident, reverse=True)
        return candidates

    def _subst_candidates(self, node: ProofNode) -> Iterator[Tuple]:
        """Stream the (Subst) instances of a goal in search order.

        Yields ``(lemma_node, theta, position, side, flipped, lemma_to)``
        payloads.  The candidate count is capped by
        ``max_subst_applications_per_goal``; hitting the cap ends the stream
        (the goal falls through to case analysis, as in the recursive search).
        """
        equation = node.equation
        attempts = 0
        for lemma_node in self._lemma_candidates(node.ident):
            self._check_budget()
            lemma = lemma_node.equation
            orientations = (
                (lemma.lhs, lemma.rhs, False),
                (lemma.rhs, lemma.lhs, True),
            )
            for lemma_from, lemma_to, flipped in orientations:
                if isinstance(lemma_from, Var):
                    continue
                missing = {
                    v.name for v in free_vars(lemma_to)
                } - {v.name for v in free_vars(lemma_from)}
                if missing:
                    continue
                # A symbol-headed lemma side can only match subterms with the
                # same head symbol and spine length; both are cached on the
                # interned nodes, so the position scan prunes in O(1) per
                # subterm without invoking the matcher.
                lemma_head = lemma_from._head
                lemma_nargs = lemma_from._nargs
                clock_push = self.clock.push
                clock_pop = self.clock.pop
                for side_name in ("lhs", "rhs"):
                    self._check_budget()
                    goal_side = getattr(equation, side_name)
                    for position, sub in positions(goal_side):
                        if isinstance(sub, Var):
                            continue
                        if lemma_head is not None and (
                            sub._head != lemma_head or sub._nargs != lemma_nargs
                        ):
                            continue
                        clock_push("match")
                        theta = match_or_none(lemma_from, sub)
                        clock_pop()
                        if theta is None:
                            continue
                        attempts += 1
                        if attempts > self.config.max_subst_applications_per_goal:
                            return
                        yield lemma_node, theta, position, side_name, flipped, lemma_to

    @staticmethod
    def _subst_continuation(equation: Equation, data: Tuple) -> Equation:
        """The goal remaining after rewriting with one (Subst) instance."""
        _lemma_node, theta, position, side_name, _flipped, lemma_to = data
        goal_side = getattr(equation, side_name)
        other_side = equation.rhs if side_name == "lhs" else equation.lhs
        rewritten = replace_at(goal_side, position, theta.apply(lemma_to))
        if side_name == "lhs":
            return Equation(rewritten, other_side)
        return Equation(other_side, rewritten)

    def _apply_subst_alternative(self, frame: Frame, data: Tuple) -> Optional[Sequence[Frame]]:
        self.clock.push("substitute")
        try:
            return self._apply_subst(frame, data)
        finally:
            self.clock.pop()

    def _apply_subst(self, frame: Frame, data: Tuple) -> Optional[Sequence[Frame]]:
        self.stats.subst_attempts += 1
        node = self.proof.node(frame.node_id)
        equation = node.equation
        lemma_node, theta, position, side_name, flipped, _lemma_to = data
        continuation = self._subst_continuation(equation, data)
        if term_size(continuation.lhs) + term_size(continuation.rhs) > self.config.max_goal_size:
            return None  # rewriting grew the goal beyond the configured bound
        if self._normalize_equation(continuation) == equation:
            return None  # no progress: the rewrite did not change the goal
        premise, work = self._add_goal(continuation)
        self._assign(
            node,
            RULE_SUBST,
            premises=[lemma_node.ident, premise],
            subst=theta.restrict(lemma_node.equation.variable_names()),
            position=position,
            side=side_name,
            lemma_flipped=flipped,
        )
        if not self._add_edges(node):
            self.rollback(frame.alt_mark)
            return None
        return [
            self._child(work, frame.depth + 1, frame.case_depth, frame.path_goals | {equation})
        ]

    # -- (Case) --------------------------------------------------------------------------------------

    def _apply_case_alternative(self, frame: Frame, variable: Var) -> Optional[Sequence[Frame]]:
        self.clock.push("case_split")
        try:
            return self._apply_case(frame, variable)
        finally:
            self.clock.pop()

    def _apply_case(self, frame: Frame, variable: Var) -> Optional[Sequence[Frame]]:
        if not isinstance(variable.ty, DataTy):
            return None
        try:
            constructors = self.program.signature.instantiate_constructors(variable.ty)
        except Exception:
            return None
        node = self.proof.node(frame.node_id)
        self.stats.case_splits += 1
        premise_ids: List[int] = []
        work_ids: List[int] = []
        constructor_names: List[str] = []
        for con_name, arg_types in constructors:
            fresh_vars = [
                Var(self.fresh.fresh(variable.name), arg_type) for arg_type in arg_types
            ]
            pattern = apply_term(Sym(con_name), *fresh_vars)
            instantiated = node.equation.apply(Substitution({variable.name: pattern}))
            premise, work = self._add_goal(instantiated)
            premise_ids.append(premise)
            work_ids.append(work)
            constructor_names.append(con_name)
        self._assign(
            node,
            RULE_CASE,
            premises=premise_ids,
            case_var=variable,
            case_constructors=tuple(constructor_names),
        )
        if not self._add_edges(node):
            self.rollback(frame.alt_mark)
            return None
        extended = frame.path_goals | {node.equation}
        return [
            self._child(work, frame.depth + 1, frame.case_depth + 1, extended)
            for work in work_ids
        ]
