"""Results and statistics of proof search."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core.equations import Equation
from ..proofs.preproof import Preproof

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from ..proofs.certificate import ProofCertificate
    from ..semantics.falsify import Counterexample

__all__ = ["SearchStatistics", "ProofResult"]


@dataclass
class SearchStatistics:
    """Counters collected during one proof attempt."""

    nodes_created: int = 0
    """Proof vertices created (including vertices later rolled back)."""

    subst_attempts: int = 0
    """Candidate (Subst) instances explored."""

    case_splits: int = 0
    """(Case) applications explored."""

    congruence_steps: int = 0
    """(Cong) decompositions applied."""

    funext_steps: int = 0
    """(FunExt) applications applied."""

    soundness_checks: int = 0
    """Global-condition checks performed."""

    soundness_violations: int = 0
    """Checks that detected an unsound cycle (branch pruned)."""

    closure_compositions: int = 0
    """Size-change graph compositions performed by the closure."""

    max_depth_reached: int = 0
    """Deepest branch explored."""

    strategy: str = ""
    """Name of the search strategy that drove the agenda core."""

    max_agenda_size: int = 0
    """High-water mark of the explicit frame agenda (the old call-stack depth)."""

    choice_points_expanded: int = 0
    """Goals whose backtracking alternatives were opened on the agenda."""

    iterations: int = 0
    """Search rounds run (iterative deepening restarts; 1 for single-pass strategies)."""

    timeout_aborts: int = 0
    """Attempts aborted because the monotonic wall-clock deadline passed."""

    node_budget_aborts: int = 0
    """Attempts aborted because the vertex budget was exhausted."""

    elapsed_seconds: float = 0.0
    """Wall-clock duration of the attempt."""

    normalizer_hits: int = 0
    """Normal-form cache hits during the attempt (sharing paying off)."""

    normalizer_misses: int = 0
    """Normal-form cache misses during the attempt."""

    certificate_seconds: float = 0.0
    """Wall-clock cost of encoding the proof certificate (0 when not emitted)."""

    falsification_seconds: float = 0.0
    """Wall-clock cost of the ``falsify_first`` ground testing (0 when off)."""

    falsification_instances: int = 0
    """Ground instances tested by ``falsify_first`` (0 when off)."""

    compile_seconds: float = 0.0
    """Wall-clock cost of compiling per-symbol match trees (lazy, shared —
    this is the compile work observed through the attempt's normaliser)."""

    compiled_steps: int = 0
    """Root reductions dispatched through compiled match trees."""

    fallback_steps: int = 0
    """Root reductions that fell back to generic matching (declined heads)."""

    rewrite_head_counts: dict = field(default_factory=dict)
    """Rewrite steps per head symbol (compiled dispatch only): the hot
    functions of the attempt, feeding ``compile_summary_table``."""

    hints_offered: int = 0
    """Hypotheses supplied to the attempt (library lemmas, human hints) after
    :attr:`~repro.search.config.ProverConfig.max_hints` truncation."""

    hint_steps: int = 0
    """(Subst) steps of the *final* proof whose lemma is a supplied hypothesis
    — how much of the proof actually leaned on the hints (0 when the attempt
    failed, or proved the goal without touching them)."""

    phase_seconds: dict = field(default_factory=dict)
    """Exclusive wall-clock seconds per pipeline phase, from the attempt's
    :class:`~repro.search.phases.PhaseClock` (``soundness`` / ``normalise`` /
    ``match`` / ``lemma_prefilter`` / ``substitute`` / ``case_split`` /
    ``expand`` / ``agenda`` / ``falsify``; suite runners add ``store``).
    Feeds ``phase_profile_table`` and ``python -m repro profile``."""

    phase_counts: dict = field(default_factory=dict)
    """Hot-callsite counters: how often each phase was entered (one count per
    ``PhaseClock.push``), alongside :attr:`phase_seconds`."""

    @property
    def timed_out(self) -> bool:
        """Was the attempt aborted by the wall-clock deadline?"""
        return self.timeout_aborts > 0

    def summary(self) -> str:
        """A compact single-line rendering of the statistics."""
        aborted = ""
        if self.timeout_aborts:
            aborted = " aborted=timeout"
        elif self.node_budget_aborts:
            aborted = " aborted=node-budget"
        strategy = f" strategy={self.strategy}" if self.strategy else ""
        rounds = f"×{self.iterations}" if self.iterations > 1 else ""
        if self.falsification_instances:
            strategy += f" falsify={self.falsification_instances}"
        if self.compiled_steps or self.fallback_steps:
            strategy += f" compiled={self.compiled_steps}/{self.compiled_steps + self.fallback_steps}"
        if self.hints_offered:
            strategy += f" hints={self.hint_steps}/{self.hints_offered}"
        return (
            f"nodes={self.nodes_created} subst={self.subst_attempts} "
            f"case={self.case_splits} soundness={self.soundness_checks} "
            f"violations={self.soundness_violations} "
            f"compositions={self.closure_compositions} "
            f"nf-cache={self.normalizer_hits}/{self.normalizer_hits + self.normalizer_misses} "
            f"agenda≤{self.max_agenda_size} choice-points={self.choice_points_expanded}"
            f"{strategy}{rounds} "
            f"time={self.elapsed_seconds * 1000:.1f}ms{aborted}"
        )


@dataclass
class ProofResult:
    """The outcome of one proof attempt."""

    proved: bool
    """Did the prover find a globally correct cyclic proof?"""

    equation: Equation
    """The goal equation."""

    disproved: bool = False
    """Did ground testing refute the goal?  (Mutually exclusive with
    :attr:`proved`; when set, :attr:`counterexample` carries the witness.)"""

    counterexample: Optional["Counterexample"] = None
    """The refuting instance found by ``falsify_first``
    (:class:`repro.semantics.falsify.Counterexample`; JSON-serialisable via
    ``to_dict`` and independently replayable via ``replay``)."""

    proof: Optional[Preproof] = None
    """The proof found (``None`` when the attempt failed)."""

    certificate: Optional["ProofCertificate"] = None
    """Portable encoding of :attr:`proof`, when the configuration asked for one
    (:attr:`repro.search.config.ProverConfig.emit_proofs`)."""

    statistics: SearchStatistics = field(default_factory=SearchStatistics)
    """Search counters."""

    reason: str = ""
    """Why the attempt failed (budget exhausted, no rule applicable, ...)."""

    goal_name: str = ""
    """The name of the goal, when proved from a :class:`repro.program.Goal`."""

    def __bool__(self) -> bool:
        return self.proved

    def __str__(self) -> str:
        if self.proved:
            status = "proved"
        elif self.disproved:
            status = "disproved"
            if self.counterexample is not None:
                status = f"disproved ({self.counterexample})"
        else:
            status = f"failed ({self.reason})" if self.reason else "failed"
        name = f"{self.goal_name}: " if self.goal_name else ""
        return f"{name}{self.equation} — {status} [{self.statistics.summary()}]"
