"""The explicit-agenda search core shared by every search loop in the system.

This module makes search *strategies* first-class.  It has two halves:

* **Saturation frontiers** (:class:`Agenda`, :class:`SearchBudget`).  The
  rewriting-induction prover, Knuth–Bendix completion (and through it
  inductionless induction) and the theory explorer are all *saturation* loops:
  pop an item from a frontier, process it, push consequences.  ``Agenda`` is
  that frontier with a pluggable discipline (LIFO, FIFO, or a deterministic
  priority queue), and ``SearchBudget`` is the shared deadline/step budget all
  of them charge against — one budget path instead of four hand-rolled ones.

* **The choice-point engine** (:class:`Frame`, :func:`run_choice_points`,
  :class:`SearchStrategy`).  The cyclic prover's search (Section 6 of the
  paper) is an AND/OR search over a *mutable* preproof with chronological
  backtracking: a goal ("frame") is expanded into a stream of rule
  *alternatives*, an alternative either resolves the goal outright or opens
  AND-children that must all be solved, and failed alternatives are rolled
  back through the prover's trail.  ``run_choice_points`` drives that search
  with an explicit agenda of frames instead of Python recursion — deep case
  splits and congruence chains can no longer hit the interpreter's recursion
  limit — and a :class:`SearchStrategy` decides the frontier discipline
  (which bound schedule to iterate, in which order AND-children are pursued)
  and the choice-point ordering (in which order a goal's alternatives are
  tried).

Three strategies ship by default:

``dfs``
    Byte-for-byte the pre-agenda recursive search: alternatives in calculus
    order, children left to right, one iteration at the configured bounds.
``iddfs``
    Iterative deepening on the (Case) depth: the whole search is re-run with
    case-split bounds 0, 1, …, ``max_case_splits``, restarting from a clean
    proof each round.  Finds shallow proofs the eager depth-first descent
    misses, at the cost of re-exploring the shallow levels.
``best-first``
    Orders each goal's alternatives through a deterministic priority queue
    scored by the size of the *normalised* continuation goal (the
    normal-form distance proxy), smaller first, ties broken by calculus
    order; AND-children are solved smallest goal first.

Registering a new strategy is one class and one registry entry — see
``docs/search.md`` for the contract.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "BudgetExhausted",
    "SearchBudget",
    "Agenda",
    "Frame",
    "Alternative",
    "SearchStrategy",
    "DepthFirstStrategy",
    "IterativeDeepeningStrategy",
    "BestFirstStrategy",
    "STRATEGIES",
    "strategy_names",
    "get_strategy",
    "run_choice_points",
]


class BudgetExhausted(Exception):
    """Raised when a search exceeds its node, step, or wall-clock budget."""


class SearchBudget:
    """A deadline plus an optional step budget, shared across search loops.

    Every search consumer (cyclic prover, rewriting induction, completion,
    exploration) charges the same object, so nested searches — e.g. the
    explorer proving lemmas with the cyclic prover — can share one wall-clock
    budget instead of each keeping its own idea of "time left".
    """

    __slots__ = ("deadline", "timeout", "max_steps", "steps")

    def __init__(self, timeout: Optional[float] = None, max_steps: Optional[int] = None):
        self.timeout = timeout
        # The monotonic clock, as everywhere else in the engine: the deadline
        # must never jump with the wall clock.
        self.deadline = (time.monotonic() + timeout) if timeout is not None else None
        self.max_steps = max_steps
        self.steps = 0

    def check(self) -> None:
        """Raise :class:`BudgetExhausted` when the deadline has passed."""
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise BudgetExhausted(f"timeout of {self.timeout}s exceeded")

    def charge(self, steps: int = 1) -> None:
        """Consume ``steps`` from the step budget (and check the deadline)."""
        self.steps += steps
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExhausted(f"step budget of {self.max_steps} exhausted")
        self.check()

    @property
    def exhausted_steps(self) -> bool:
        return self.max_steps is not None and self.steps >= self.max_steps

    def remaining_seconds(self) -> Optional[float]:
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())


class Agenda:
    """A search frontier with a pluggable discipline.

    ``discipline`` is one of ``"lifo"`` (stack), ``"fifo"`` (queue), or
    ``"priority"`` (min-heap on ``key(item)``, FIFO among equal keys — the
    insertion sequence number is the deterministic tie-break, so a priority
    agenda reproduces the classical "stable sort then pop front" loops
    exactly).  ``max_size`` records the high-water mark for statistics.
    """

    __slots__ = ("discipline", "key", "_items", "_seq", "max_size")

    def __init__(self, discipline: str = "lifo", key: Optional[Callable] = None):
        if discipline not in ("lifo", "fifo", "priority"):
            raise ValueError(f"unknown agenda discipline {discipline!r}")
        if discipline == "priority" and key is None:
            raise ValueError("a priority agenda needs a key function")
        self.discipline = discipline
        self.key = key
        # A heap for priority, a deque otherwise: fifo pops from the left,
        # which on a plain list would cost O(n) per pop.
        self._items = [] if discipline == "priority" else deque()
        self._seq = 0
        self.max_size = 0

    def push(self, item) -> None:
        if self.discipline == "priority":
            heapq.heappush(self._items, (self.key(item), self._seq, item))
        else:
            self._items.append(item)
        self._seq += 1
        if len(self._items) > self.max_size:
            self.max_size = len(self._items)

    def extend(self, items: Iterable) -> None:
        for item in items:
            self.push(item)

    def pop(self):
        if not self._items:
            raise IndexError("pop from an empty agenda")
        if self.discipline == "priority":
            return heapq.heappop(self._items)[2]
        if self.discipline == "fifo":
            return self._items.popleft()
        return self._items.pop()

    def drain(self) -> List:
        """Remove and return every remaining item, in pop order."""
        items = []
        while self._items:
            items.append(self.pop())
        return items

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


# ---------------------------------------------------------------------------
# The choice-point engine
# ---------------------------------------------------------------------------

#: Frame states of the iterative engine.
_NEW = 0        # not yet expanded
_PICK = 1       # looking for the next applicable alternative
_STEP = 2       # an alternative is open; dispatch its next AND-child
_WAIT = 3       # an AND-child is on the agenda above this frame


class Frame:
    """One goal of the AND/OR search: a choice point over rule alternatives.

    Mirrors one activation of the old recursive ``_solve``: the proof vertex
    to justify, the (Subst)/(Case) depths, and the set of goal equations on
    the current root-to-goal path (the loop check).  The engine adds the
    mutable search state: the alternative stream, the trail mark of the
    alternative currently open, and the AND-children still to be solved.
    """

    __slots__ = (
        "node_id", "depth", "case_depth", "path_goals",
        "alts", "alt_mark", "children", "child_idx", "state", "score",
    )

    def __init__(self, node_id: int, depth: int, case_depth: int, path_goals: frozenset,
                 score: int = 0):
        self.node_id = node_id
        self.depth = depth
        self.case_depth = case_depth
        self.path_goals = path_goals
        self.alts: Optional[Iterator["Alternative"]] = None
        self.alt_mark = 0
        self.children: Sequence["Frame"] = ()
        self.child_idx = 0
        self.state = _NEW
        self.score = score


class Alternative:
    """One untried rule instance at a choice point.

    ``kind`` names the calculus rule (``"cong"``, ``"funext"``, ``"subst"``,
    ``"case"``); ``data`` is the rule-specific payload the calculus knows how
    to apply; ``seq`` is the position in calculus order (the deterministic
    tie-break of every strategy).
    """

    __slots__ = ("kind", "data", "seq")

    def __init__(self, kind: str, data, seq: int):
        self.kind = kind
        self.data = data
        self.seq = seq


class SearchStrategy:
    """The strategy contract: bound schedule, alternative order, child order.

    A strategy never touches the proof or the trail — it only decides *order*:
    which per-iteration case-split bounds to run (``case_bounds``), in which
    order a goal's alternatives are attempted (``order_alternatives``), and in
    which order the AND-children of an open alternative are pursued
    (``order_children``).  Orders must be deterministic: given the same
    calculus state they must produce the same sequence, or proof search stops
    being reproducible across runs and processes.
    """

    name = "abstract"

    def case_bounds(self, config) -> Tuple[int, ...]:
        """The ``max_case_splits`` bound for each search iteration.

        One entry per iteration; the search restarts from a clean proof
        between entries and stops at the first proof.  The default is a
        single iteration at the configured bound.
        """
        return (config.max_case_splits,)

    def order_alternatives(self, calculus, frame: Frame,
                           alts: Iterator[Alternative]) -> Iterator[Alternative]:
        """The order in which a goal's alternatives are attempted.

        ``alts`` is a *lazy* stream in calculus order; strategies that do not
        reorder should return it untouched (materialising it changes when
        budget checks run).  Reordering strategies may consume it and ask
        ``calculus.score_alternative`` for a heuristic value.
        """
        return alts

    def order_children(self, calculus, frame: Frame,
                       children: Sequence[Frame]) -> Sequence[Frame]:
        """The order in which an alternative's AND-children are solved."""
        return children


class DepthFirstStrategy(SearchStrategy):
    """The paper's strategy: exactly the old recursive depth-first search."""

    name = "dfs"


class IterativeDeepeningStrategy(SearchStrategy):
    """Iterative deepening on the (Case) depth.

    Runs the full search with case-split bounds 0, 1, …, ``max_case_splits``,
    restarting from an empty proof between rounds.  Within one round the
    expansion order is exactly ``dfs`` — only the bound schedule differs.
    The node and wall-clock budgets are global across rounds, so a goal that
    exhausts the budget shallowly never reaches the deeper rounds.
    """

    name = "iddfs"

    def case_bounds(self, config) -> Tuple[int, ...]:
        return tuple(range(0, config.max_case_splits + 1))


class BestFirstStrategy(SearchStrategy):
    """Heuristic ordering through a deterministic priority queue.

    Alternatives are scored by ``calculus.score_alternative`` — for (Subst)
    instances the size of the normalised continuation goal (how close the
    rewrite gets the goal to a normal form), for (Case) splits the goal size
    plus a per-constructor penalty — and attempted smallest score first, with
    the calculus enumeration order as the tie-break.  AND-children are solved
    smallest goal first, so cheap subgoals fail fast before expensive
    siblings are attempted.
    """

    name = "best-first"

    def order_alternatives(self, calculus, frame: Frame,
                           alts: Iterator[Alternative]) -> Iterator[Alternative]:
        heap: List[Tuple[int, int, Alternative]] = [
            (calculus.score_alternative(frame, alt), alt.seq, alt) for alt in alts
        ]
        heapq.heapify(heap)
        while heap:
            yield heapq.heappop(heap)[2]

    def order_children(self, calculus, frame: Frame,
                       children: Sequence[Frame]) -> Sequence[Frame]:
        return sorted(children, key=lambda child: (child.score, child.node_id))


STRATEGIES = {
    strategy.name: strategy
    for strategy in (DepthFirstStrategy(), IterativeDeepeningStrategy(), BestFirstStrategy())
}
"""The strategy registry; ``ProverConfig.strategy`` values are keys here."""


def strategy_names() -> Tuple[str, ...]:
    """The registered strategy names, ``dfs`` first (the default)."""
    names = sorted(STRATEGIES)
    names.remove(DepthFirstStrategy.name)
    return (DepthFirstStrategy.name, *names)


def get_strategy(name: str) -> SearchStrategy:
    """Look a strategy up by name; raises ``ValueError`` for unknown names."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown search strategy {name!r}; registered: {', '.join(sorted(STRATEGIES))}"
        ) from None


def run_choice_points(calculus, root: Frame, strategy: SearchStrategy, stats=None) -> bool:
    """Drive the AND/OR search iteratively; returns whether ``root`` was solved.

    The *calculus* supplies the proof system through four operations:

    * ``expand(frame) -> Optional[bool]`` — apply the non-backtracking rules
      to the frame's goal.  ``True``/``False`` resolves the goal outright;
      ``None`` means the goal has alternatives and ``frame.alts`` has been
      set to their lazy stream.
    * ``apply_alternative(frame, alt) -> Optional[Sequence[Frame]]`` — try
      one alternative.  ``None`` means it did not apply (any partial state
      already rolled back); otherwise the returned AND-children must all be
      solved for the alternative to stand.
    * ``mark() -> int`` / ``rollback(mark)`` — the chronological trail.

    The agenda is the explicit stack of frames (for ``dfs`` exactly the old
    call stack); no Python recursion happens per proof node, so search depth
    is bounded by memory, not by ``sys.getrecursionlimit()``.  The strategy
    hooks decide alternative and child order; the engine owns correctness
    (AND-semantics, rollback points, failure propagation).
    """
    agenda: List[Frame] = [root]
    solved = False  # the result handed to the frame below the one just popped
    while agenda:
        if stats is not None and len(agenda) > stats.max_agenda_size:
            stats.max_agenda_size = len(agenda)
        frame = agenda[-1]

        if frame.state == _NEW:
            resolved = calculus.expand(frame)
            if resolved is not None:
                agenda.pop()
                solved = resolved
                continue
            if stats is not None:
                stats.choice_points_expanded += 1
            frame.alts = strategy.order_alternatives(calculus, frame, frame.alts)
            frame.state = _PICK

        elif frame.state == _WAIT:
            if solved:
                frame.child_idx += 1
                frame.state = _STEP
            else:
                # The failed child poisons the whole conjunction: undo the
                # alternative (and every sibling subtree) and try the next.
                calculus.rollback(frame.alt_mark)
                frame.state = _PICK

        if frame.state == _PICK:
            children: Optional[Sequence[Frame]] = None
            for alt in frame.alts:
                frame.alt_mark = calculus.mark()
                children = calculus.apply_alternative(frame, alt)
                if children is not None:
                    break
            if children is None:
                agenda.pop()
                solved = False
                continue
            frame.children = strategy.order_children(calculus, frame, children)
            frame.child_idx = 0
            frame.state = _STEP

        if frame.state == _STEP:
            if frame.child_idx >= len(frame.children):
                # Every AND-child solved: the open alternative justifies the goal.
                agenda.pop()
                solved = True
                continue
            frame.state = _WAIT
            agenda.append(frame.children[frame.child_idx])

    return solved
