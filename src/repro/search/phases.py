"""Lightweight phase accounting for the solve pipeline.

The compiled-dispatch PR taught the repo a lesson (see ``docs/profiling.md``):
micro-benchmarks said "normalisation is 2.6x faster" while full-suite wall
clock barely moved, because nobody had measured where a *suite run* actually
spends its time.  :class:`PhaseClock` answers that with a monotonic-clock
phase stack woven through :class:`~repro.search.prover._ProofAttempt`: every
``push``/``pop`` transition charges the elapsed interval to the phase on top
of the stack, so the accounting is **exclusive** — a normalisation performed
inside a (Subst) application counts as ``normalise``, not twice — and the
per-phase totals sum to (at most) the attempt's wall clock.

The clock is always on.  A profiling *switch* would have to live on
:class:`~repro.search.config.ProverConfig`, whose every field feeds the
result store's configuration fingerprint — flipping it would invalidate every
persisted outcome.  Instead the instrumentation is kept cheap enough to leave
enabled (two ``perf_counter`` reads and two dict operations per transition,
the same budget as the normaliser's ``head_steps`` counters), and the totals
travel with :class:`~repro.search.result.SearchStatistics` as plain additive
fields.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Tuple

__all__ = ["PHASES", "PhaseClock", "phase_intervals"]

#: Display order of the known phases (unknown phases sort after these).
PHASES = (
    "soundness",
    "falsify",
    "normalise",
    "match",
    "lemma_prefilter",
    "substitute",
    "case_split",
    "expand",
    "agenda",
    "store",
)


class PhaseClock:
    """An exclusive-time phase stack over the monotonic clock.

    ``push(phase)`` charges the interval since the last transition to the
    phase currently on top of the stack, then makes ``phase`` current;
    ``pop()`` charges the interval to the departing phase and returns to the
    enclosing one.  ``counts`` records one hot-callsite count per ``push`` —
    how often each phase was *entered*, not how long it ran.
    """

    __slots__ = ("seconds", "counts", "_stack", "_last")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._stack: List[str] = []
        self._last = 0.0

    def push(self, phase: str) -> None:
        now = perf_counter()
        stack = self._stack
        if stack:
            top = stack[-1]
            seconds = self.seconds
            seconds[top] = seconds.get(top, 0.0) + (now - self._last)
        stack.append(phase)
        counts = self.counts
        counts[phase] = counts.get(phase, 0) + 1
        self._last = now

    def pop(self) -> None:
        now = perf_counter()
        phase = self._stack.pop()
        seconds = self.seconds
        seconds[phase] = seconds.get(phase, 0.0) + (now - self._last)
        self._last = now

    def snapshot(self) -> Dict[str, float]:
        """The nonzero per-phase totals, ready for ``phase_seconds``."""
        return {phase: total for phase, total in self.seconds.items() if total > 0.0}


def phase_intervals(
    phase_seconds: Dict[str, float], start: float
) -> List[Tuple[str, float, float]]:
    """Lay phase totals end-to-end from ``start`` for trace rendering.

    The clock records exclusive *totals*, not the thousands of individual
    intervals (persisting those would blow the cheapness budget), so trace
    spans for phases are synthetic: each phase gets one contiguous block, in
    :data:`PHASES` display order (unknown phases after, alphabetically),
    starting where the previous block ended.  The blocks sum to the measured
    totals, which is what a Perfetto lane needs to show *where the time went*
    inside a ``worker-solve`` span.
    """

    order = {phase: index for index, phase in enumerate(PHASES)}
    items = sorted(
        (phase_seconds or {}).items(),
        key=lambda item: (order.get(item[0], len(PHASES)), item[0]),
    )
    intervals: List[Tuple[str, float, float]] = []
    cursor = float(start)
    for phase, seconds in items:
        seconds = float(seconds)
        if seconds <= 0.0:
            continue
        intervals.append((phase, cursor, cursor + seconds))
        cursor += seconds
    return intervals
