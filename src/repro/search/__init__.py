"""The CycleQ proof-search engine."""

from .agenda import (
    Agenda,
    BudgetExhausted,
    SearchBudget,
    SearchStrategy,
    STRATEGIES,
    get_strategy,
    strategy_names,
)
from .config import LEMMAS_ALL, LEMMAS_CASE_ONLY, LEMMAS_NONE, STRATEGY_DFS, ProverConfig
from .prover import Prover, prove, prove_goal
from .result import ProofResult, SearchStatistics

__all__ = [
    "Prover", "prove", "prove_goal",
    "ProverConfig", "LEMMAS_CASE_ONLY", "LEMMAS_ALL", "LEMMAS_NONE", "STRATEGY_DFS",
    "ProofResult", "SearchStatistics",
    "Agenda", "SearchBudget", "BudgetExhausted",
    "SearchStrategy", "STRATEGIES", "get_strategy", "strategy_names",
]
