"""The CycleQ proof-search engine."""

from .config import LEMMAS_ALL, LEMMAS_CASE_ONLY, LEMMAS_NONE, ProverConfig
from .prover import Prover, prove, prove_goal
from .result import ProofResult, SearchStatistics

__all__ = [
    "Prover", "prove", "prove_goal",
    "ProverConfig", "LEMMAS_CASE_ONLY", "LEMMAS_ALL", "LEMMAS_NONE",
    "ProofResult", "SearchStatistics",
]
