"""Benchmark programs: the prelude, the IsaPlanner suite, and the mutual-induction suite."""

from .isaplanner import (
    HINTED_PROPERTIES,
    ISAPLANNER_PROPERTIES_SOURCE,
    isaplanner_goals,
    isaplanner_program,
)
from .mutual import MUTUAL_SOURCE, mutual_goals, mutual_program
from .prelude import PRELUDE_SOURCE
from .registry import (
    PAPER_REPORTED,
    BenchmarkProblem,
    all_problems,
    isaplanner_problems,
    mutual_problems,
)

__all__ = [
    "PRELUDE_SOURCE",
    "ISAPLANNER_PROPERTIES_SOURCE", "isaplanner_program", "isaplanner_goals", "HINTED_PROPERTIES",
    "MUTUAL_SOURCE", "mutual_program", "mutual_goals",
    "BenchmarkProblem", "all_problems", "isaplanner_problems", "mutual_problems",
    "PAPER_REPORTED",
]
