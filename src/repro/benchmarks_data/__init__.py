"""Benchmark programs: the prelude, the IsaPlanner suite, and the mutual-induction suite."""

from .isaplanner import (
    HINTED_PROPERTIES,
    ISAPLANNER_PROPERTIES_SOURCE,
    isaplanner_goals,
    isaplanner_program,
)
from .false_conjectures import (
    FALSE_CONJECTURES_SOURCE,
    false_conjectures_goals,
    false_conjectures_program,
)
from .mutual import MUTUAL_SOURCE, mutual_goals, mutual_program
from .prelude import PRELUDE_SOURCE
from .registry import (
    PAPER_REPORTED,
    BenchmarkProblem,
    all_problems,
    false_conjectures_problems,
    isaplanner_problems,
    mutual_problems,
)

__all__ = [
    "PRELUDE_SOURCE",
    "ISAPLANNER_PROPERTIES_SOURCE", "isaplanner_program", "isaplanner_goals", "HINTED_PROPERTIES",
    "MUTUAL_SOURCE", "mutual_program", "mutual_goals",
    "FALSE_CONJECTURES_SOURCE", "false_conjectures_program", "false_conjectures_goals",
    "BenchmarkProblem", "all_problems", "isaplanner_problems", "mutual_problems",
    "false_conjectures_problems",
    "PAPER_REPORTED",
]
