"""The mutual-induction benchmark problems (Section 1 / Section 6.1).

The IsaPlanner suite contains no problems that require mutual induction, so the
paper adds "a small number of problems around the representation of annotated,
mutually recursive syntax trees, as shown in the introduction".  This module
re-creates that family: the mutually recursive ``Term``/``Expr`` datatypes of
Fig. 1 with their functorial ``mapT``/``mapE`` and size functions, and the
properties (identity and composition laws, size homomorphisms) one naturally
states about them.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from ..lang.loader import load_program
from ..program import Goal, Program

__all__ = ["MUTUAL_SOURCE", "mutual_program", "mutual_goals"]

MUTUAL_SOURCE = """
-- Mutually recursive annotated syntax trees (Fig. 1) ------------------------------
data Bool = True | False
data Nat = Z | S Nat
data List a = Nil | Cons a (List a)
data Term a = TVar a | Cst Nat | TApp (Expr a) (Expr a)
data Expr a = MkE (Term a) Nat

id :: a -> a
id x = x

comp :: (b -> c) -> (a -> b) -> a -> c
comp f g x = f (g x)

add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)

mapT :: (a -> b) -> Term a -> Term b
mapT f (TVar v) = TVar (f v)
mapT f (Cst c) = Cst c
mapT f (TApp e1 e2) = TApp (mapE f e1) (mapE f e2)

mapE :: (a -> b) -> Expr a -> Expr b
mapE f (MkE t n) = MkE (mapT f t) n

sizeT :: Term a -> Nat
sizeT (TVar v) = S Z
sizeT (Cst c) = S Z
sizeT (TApp e1 e2) = S (add (sizeE e1) (sizeE e2))

sizeE :: Expr a -> Nat
sizeE (MkE t n) = S (sizeT t)

-- Mutual-induction properties ------------------------------------------------------
mprop_01 e = mapE id e === e
mprop_02 t = mapT id t === t
mprop_03 e = sizeE (mapE id e) === sizeE e
mprop_04 t = sizeT (mapT id t) === sizeT t
mprop_05 f e = sizeE (mapE f e) === sizeE e
mprop_06 f t = sizeT (mapT f t) === sizeT t
mprop_07 f g e = mapE f (mapE g e) === mapE (comp f g) e
mprop_08 f g t = mapT f (mapT g t) === mapT (comp f g) t
"""


@lru_cache(maxsize=None)
def mutual_program() -> Program:
    """The mutual-induction benchmark program."""
    return load_program(MUTUAL_SOURCE, name="mutual")


def mutual_goals() -> List[Goal]:
    """All mutual-induction goals, in numeric order."""
    program = mutual_program()
    return [program.goals[name] for name in sorted(program.goals)]
