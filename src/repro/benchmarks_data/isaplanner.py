"""The 85 IsaPlanner case-analysis benchmark properties.

This is the standard suite of 85 induction problems about naturals, lists and
trees (originally used to evaluate IsaPlanner's case-analysis rippling, and
since used by Zeno, HipSpec, CVC4 and the paper's own evaluation).  The
properties are re-encoded in the reproduction's surface language against the
definitions of :mod:`repro.benchmarks_data.prelude`; conditional properties are
written with ``==>`` and are classified as out of scope by the prover, exactly
as in the paper ("13 were not in scope as they concerned conditional
equations").

The encoding is the library's own; every *unconditional* property is checked
against the ground-instance semantics in the test suite
(``tests/test_isaplanner_semantics.py``), so a mis-stated property would be
caught rather than silently skewing the benchmark.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from ..lang.loader import load_program
from ..program import Goal, Program
from .prelude import PRELUDE_SOURCE

__all__ = ["ISAPLANNER_PROPERTIES_SOURCE", "isaplanner_program", "isaplanner_goals"]


ISAPLANNER_PROPERTIES_SOURCE = """
-- The 85 IsaPlanner benchmark properties ------------------------------------------
prop_01 n xs = app (take n xs) (drop n xs) === xs
prop_02 n xs ys = add (count n xs) (count n ys) === count n (app xs ys)
prop_03 n xs ys = leq (count n xs) (count n (app xs ys)) === True
prop_04 n xs = S (count n xs) === count n (Cons n xs)
prop_05 n x xs = eqN n x === True ==> S (count n xs) === count n (Cons x xs)
prop_06 n m = minus n (add n m) === Z
prop_07 n m = minus (add n m) n === m
prop_08 k m n = minus (add k m) (add k n) === minus m n
prop_09 i j k = minus (minus i j) k === minus i (add j k)
prop_10 m = minus m m === Z
prop_11 xs = drop Z xs === xs
prop_12 n f xs = drop n (map f xs) === map f (drop n xs)
prop_13 n x xs = drop (S n) (Cons x xs) === drop n xs
prop_14 p xs ys = filter p (app xs ys) === app (filter p xs) (filter p ys)
prop_15 x xs = len (ins x xs) === S (len xs)
prop_16 x xs = xs === Nil ==> last (Cons x xs) === x
prop_17 n = leq n Z === eqN n Z
prop_18 i m = lt i (S (add i m)) === True
prop_19 n xs = len (drop n xs) === minus (len xs) n
prop_20 xs = len (sort xs) === len xs
prop_21 n m = leq n (add n m) === True
prop_22 a b c = max2 (max2 a b) c === max2 a (max2 b c)
prop_23 a b = max2 a b === max2 b a
prop_24 a b = eqN (max2 a b) a === leq b a
prop_25 a b = eqN (max2 a b) b === leq a b
prop_26 x xs ys = elem x xs === True ==> elem x (app xs ys) === True
prop_27 x xs ys = elem x ys === True ==> elem x (app xs ys) === True
prop_28 x xs = elem x (app xs (Cons x Nil)) === True
prop_29 x xs = elem x (ins1 x xs) === True
prop_30 x xs = elem x (ins x xs) === True
prop_31 a b c = min2 (min2 a b) c === min2 a (min2 b c)
prop_32 a b = min2 a b === min2 b a
prop_33 a b = eqN (min2 a b) a === leq a b
prop_34 a b = eqN (min2 a b) b === leq b a
prop_35 xs = dropWhile constFalse xs === xs
prop_36 xs = takeWhile constTrue xs === xs
prop_37 x xs = not (elem x (delete x xs)) === True
prop_38 n xs = count n (app xs (Cons n Nil)) === S (count n xs)
prop_39 n x xs = add (count n (Cons x Nil)) (count n xs) === count n (Cons x xs)
prop_40 xs = take Z xs === Nil
prop_41 n f xs = take n (map f xs) === map f (take n xs)
prop_42 n x xs = take (S n) (Cons x xs) === Cons x (take n xs)
prop_43 p xs = app (takeWhile p xs) (dropWhile p xs) === xs
prop_44 x xs ys = zip (Cons x xs) ys === zipConcat x xs ys
prop_45 x y xs ys = zip (Cons x xs) (Cons y ys) === Cons (MkPair x y) (zip xs ys)
prop_46 ys = zip Nil ys === Nil
prop_47 t = height (mirror t) === height t
prop_48 xs = not (null xs) === True ==> app (butlast xs) (Cons (last xs) Nil) === xs
prop_49 xs ys = butlast (app xs ys) === butlastConcat xs ys
prop_50 xs = butlast xs === take (minus (len xs) (S Z)) xs
prop_51 x xs = butlast (app xs (Cons x Nil)) === xs
prop_52 n xs = count n xs === count n (rev xs)
prop_53 n xs = count n xs === count n (sort xs)
prop_54 m n = minus (add m n) n === m
prop_55 n xs ys = drop n (app xs ys) === app (drop n xs) (drop (minus n (len xs)) ys)
prop_56 n m xs = drop n (drop m xs) === drop (add n m) xs
prop_57 n m xs = drop n (take m xs) === take (minus m n) (drop n xs)
prop_58 n xs ys = drop n (zip xs ys) === zip (drop n xs) (drop n ys)
prop_59 x xs ys = ys === Nil ==> last (app xs ys) === last xs
prop_60 xs ys = not (null ys) === True ==> last (app xs ys) === last ys
prop_61 xs ys = last (app xs ys) === lastOfTwo xs ys
prop_62 x xs = not (null xs) === True ==> last (Cons x xs) === last xs
prop_63 n xs = lt n (len xs) === True ==> last (drop n xs) === last xs
prop_64 x xs = last (app xs (Cons x Nil)) === x
prop_65 i m = lt i (S (add m i)) === True
prop_66 p xs = leq (len (filter p xs)) (len xs) === True
prop_67 xs = len (butlast xs) === minus (len xs) (S Z)
prop_68 n xs = leq (len (delete n xs)) (len xs) === True
prop_69 n m = leq n (add m n) === True
prop_70 m n = leq m n === True ==> leq m (S n) === True
prop_71 x y xs = eqN x y === False ==> elem x (ins y xs) === elem x xs
prop_72 i xs = rev (drop i xs) === take (minus (len xs) i) (rev xs)
prop_73 p xs = rev (filter p xs) === filter p (rev xs)
prop_74 i xs = rev (take i xs) === drop (minus (len xs) i) (rev xs)
prop_75 n m xs = add (count n xs) (count n (Cons m Nil)) === count n (Cons m xs)
prop_76 n m xs = eqN n m === False ==> count n (app xs (Cons m Nil)) === count n xs
prop_77 x xs = sorted xs === True ==> sorted (insort x xs) === True
prop_78 xs = sorted (sort xs) === True
prop_79 m n k = minus (minus (S m) n) (S k) === minus (minus m n) k
prop_80 n xs ys = take n (app xs ys) === app (take n xs) (take (minus n (len xs)) ys)
prop_81 n m xs = take n (drop m xs) === drop m (take (add n m) xs)
prop_82 n xs ys = take n (zip xs ys) === zip (take n xs) (take n ys)
prop_83 xs ys zs = zip (app xs ys) zs === app (zip xs (take (len xs) zs)) (zip ys (drop (len xs) zs))
prop_84 xs ys zs = zip xs (app ys zs) === app (zip (take (len ys) xs) ys) (zip (drop (len ys) xs) zs)
prop_85 xs ys = len xs === len ys ==> zip (rev xs) (rev ys) === rev (zip xs ys)
"""

# Properties the paper reports as becoming provable when a commutativity hint
# is supplied (Section 6.2): 47 needs commutativity of max, 54/65/69 need
# commutativity of add.
HINTED_PROPERTIES: Dict[str, str] = {
    "prop_47": "max2 a b === max2 b a",
    "prop_54": "add a b === add b a",
    "prop_65": "add a b === add b a",
    "prop_69": "add a b === add b a",
}


@lru_cache(maxsize=None)
def isaplanner_program() -> Program:
    """The IsaPlanner benchmark program: prelude definitions plus all 85 properties."""
    return load_program(
        PRELUDE_SOURCE + ISAPLANNER_PROPERTIES_SOURCE, name="isaplanner"
    )


def isaplanner_goals() -> List[Goal]:
    """All 85 goals, in numeric order."""
    program = isaplanner_program()
    return [program.goals[name] for name in sorted(program.goals)]
