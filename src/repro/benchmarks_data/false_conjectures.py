"""Plausible-but-false conjectures over the prelude: the refutation suite.

Every property in this suite *looks* like a textbook lemma — a distributivity
law with the sides in the wrong order, a symmetry that does not hold, an
off-by-one — and every one of them is false.  They exercise the path the other
suites cannot: the falsifier (:mod:`repro.semantics.falsify`) must find a
counterexample for each within its default budgets, and no proof attempt may
ever "prove" one (that would be a soundness bug caught by the test suite).

Each conjecture is refutable by *small* instances: the exhaustive regime of
the default :class:`~repro.semantics.falsify.FalsificationConfig` (depth 4,
fair-shell order) already finds a witness for all of them, so suite runs are
deterministic and do not depend on the random regime.  ``fc_12`` is
conditional — premises included, it is still false — exercising the one
verdict available for conditional goals.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from ..lang.loader import load_program
from ..program import Goal, Program
from .prelude import PRELUDE_SOURCE

__all__ = [
    "FALSE_CONJECTURES_SOURCE",
    "false_conjectures_program",
    "false_conjectures_goals",
]


FALSE_CONJECTURES_SOURCE = """
-- Plausible-but-false conjectures -------------------------------------------
-- rev distributes over app, but the factors swap: this version is false.
fc_01 xs ys = rev (app xs ys) === app (rev xs) (rev ys)
-- truncated subtraction is not commutative.
fc_02 n m = minus n m === minus m n
-- only true while n <= len xs; dropping past xs eats into ys.
fc_03 n xs ys = drop n (app xs ys) === app (drop n xs) ys
-- butlast (xs ++ ys) keeps all of xs when ys is nonempty.
fc_04 xs ys = butlast (app xs ys) === app (butlast xs) (butlast ys)
-- false when ys is empty and xs is not.
fc_05 xs ys = last (app xs ys) === last ys
-- sorting does not distribute over append.
fc_06 xs ys = sort (app xs ys) === app (sort xs) (sort ys)
-- sort (rev xs) is ascending; rev (sort xs) is descending.
fc_07 xs = sort (rev xs) === rev (sort xs)
-- the correct identity drops len xs - n elements, not n.
fc_08 n xs = take n (rev xs) === rev (drop n xs)
-- ins1 does not insert when the element is already present.
fc_09 x xs = len (ins1 x xs) === S (len xs)
-- leq is not symmetric.
fc_10 n m = leq n m === leq m n
-- mirror is an involution, not the identity.
fc_11 t = mirror t === t
-- conditional and still false: take n = m.
fc_12 n m = leq n m === True ==> leq (S n) m === True
"""


@lru_cache(maxsize=None)
def false_conjectures_program() -> Program:
    """The refutation suite's program: the prelude plus all false conjectures."""
    return load_program(
        PRELUDE_SOURCE + FALSE_CONJECTURES_SOURCE, name="false_conjectures"
    )


def false_conjectures_goals() -> List[Goal]:
    """All false conjectures, in numeric order."""
    program = false_conjectures_program()
    return [program.goals[name] for name in sorted(program.goals)]
