"""The benchmark prelude: the function definitions used by the IsaPlanner suite.

This is a re-encoding, in the reproduction's surface language, of the standard
definitions over booleans, Peano naturals, lists, pairs and binary trees that
the 85 IsaPlanner case-analysis benchmarks are stated over (the same
definitions used by IsaPlanner, HipSpec, Zeno and the TIP suite).  Boolean
conditionals are expressed with an explicit ``ite`` function because the
surface language — like the core term-rewriting formalism of the paper — has
no built-in ``if-then-else``; this is also precisely why properties whose
proofs require case analysis on a boolean condition (e.g. the ``count``
properties) are out of reach of the unconditional proof system, as discussed
in Section 6.2 of the paper.

``minus`` is defined with the ``x - Z = x`` equation first (instead of the
more common ``Z - y = Z`` orientation); the two definitions compute the same
truncated subtraction, but this orientation is the one the paper's Fig. 2
proof of ``butLast xs ≈ take (len xs - S Z) xs`` relies on.
"""

from __future__ import annotations

__all__ = ["PRELUDE_SOURCE"]

PRELUDE_SOURCE = """
-- Datatypes -----------------------------------------------------------------
data Bool = True | False
data Nat = Z | S Nat
data List a = Nil | Cons a (List a)
data Pair a b = MkPair a b
data Tree a = Leaf | Node (Tree a) a (Tree a)

-- Booleans ------------------------------------------------------------------
not :: Bool -> Bool
not True = False
not False = True

and :: Bool -> Bool -> Bool
and True b = b
and False b = False

or :: Bool -> Bool -> Bool
or True b = True
or False b = b

ite :: Bool -> a -> a -> a
ite True x y = x
ite False x y = y

-- Naturals --------------------------------------------------------------------
add :: Nat -> Nat -> Nat
add Z y = y
add (S x) y = S (add x y)

minus :: Nat -> Nat -> Nat
minus x Z = x
minus Z (S y) = Z
minus (S x) (S y) = minus x y

min2 :: Nat -> Nat -> Nat
min2 Z y = Z
min2 (S x) Z = Z
min2 (S x) (S y) = S (min2 x y)

max2 :: Nat -> Nat -> Nat
max2 Z y = y
max2 (S x) Z = S x
max2 (S x) (S y) = S (max2 x y)

eqN :: Nat -> Nat -> Bool
eqN Z Z = True
eqN Z (S y) = False
eqN (S x) Z = False
eqN (S x) (S y) = eqN x y

leq :: Nat -> Nat -> Bool
leq Z y = True
leq (S x) Z = False
leq (S x) (S y) = leq x y

lt :: Nat -> Nat -> Bool
lt x Z = False
lt Z (S y) = True
lt (S x) (S y) = lt x y

-- Generic list functions ---------------------------------------------------------
id :: a -> a
id x = x

constTrue :: a -> Bool
constTrue x = True

constFalse :: a -> Bool
constFalse x = False

app :: List a -> List a -> List a
app Nil ys = ys
app (Cons x xs) ys = Cons x (app xs ys)

len :: List a -> Nat
len Nil = Z
len (Cons x xs) = S (len xs)

null :: List a -> Bool
null Nil = True
null (Cons x xs) = False

rev :: List a -> List a
rev Nil = Nil
rev (Cons x xs) = app (rev xs) (Cons x Nil)

map :: (a -> b) -> List a -> List b
map f Nil = Nil
map f (Cons x xs) = Cons (f x) (map f xs)

filter :: (a -> Bool) -> List a -> List a
filter p Nil = Nil
filter p (Cons x xs) = ite (p x) (Cons x (filter p xs)) (filter p xs)

take :: Nat -> List a -> List a
take Z xs = Nil
take (S n) Nil = Nil
take (S n) (Cons x xs) = Cons x (take n xs)

drop :: Nat -> List a -> List a
drop Z xs = xs
drop (S n) Nil = Nil
drop (S n) (Cons x xs) = drop n xs

takeWhile :: (a -> Bool) -> List a -> List a
takeWhile p Nil = Nil
takeWhile p (Cons x xs) = ite (p x) (Cons x (takeWhile p xs)) Nil

dropWhile :: (a -> Bool) -> List a -> List a
dropWhile p Nil = Nil
dropWhile p (Cons x xs) = ite (p x) (dropWhile p xs) (Cons x xs)

butlast :: List a -> List a
butlast Nil = Nil
butlast (Cons x Nil) = Nil
butlast (Cons x (Cons y ys)) = Cons x (butlast (Cons y ys))

zip :: List a -> List b -> List (Pair a b)
zip Nil ys = Nil
zip (Cons x xs) Nil = Nil
zip (Cons x xs) (Cons y ys) = Cons (MkPair x y) (zip xs ys)

zipConcat :: a -> List a -> List b -> List (Pair a b)
zipConcat x xs Nil = Nil
zipConcat x xs (Cons y ys) = Cons (MkPair x y) (zip xs ys)

-- Nat-list functions (they compare elements with eqN / leq / lt) -------------------
count :: Nat -> List Nat -> Nat
count n Nil = Z
count n (Cons x xs) = ite (eqN n x) (S (count n xs)) (count n xs)

elem :: Nat -> List Nat -> Bool
elem n Nil = False
elem n (Cons x xs) = or (eqN n x) (elem n xs)

delete :: Nat -> List Nat -> List Nat
delete n Nil = Nil
delete n (Cons x xs) = ite (eqN n x) (delete n xs) (Cons x (delete n xs))

ins :: Nat -> List Nat -> List Nat
ins n Nil = Cons n Nil
ins n (Cons x xs) = ite (lt n x) (Cons n (Cons x xs)) (Cons x (ins n xs))

ins1 :: Nat -> List Nat -> List Nat
ins1 n Nil = Cons n Nil
ins1 n (Cons x xs) = ite (eqN n x) (Cons x xs) (Cons x (ins1 n xs))

insort :: Nat -> List Nat -> List Nat
insort n Nil = Cons n Nil
insort n (Cons x xs) = ite (leq n x) (Cons n (Cons x xs)) (Cons x (insort n xs))

sort :: List Nat -> List Nat
sort Nil = Nil
sort (Cons x xs) = insort x (sort xs)

sorted :: List Nat -> Bool
sorted Nil = True
sorted (Cons x Nil) = True
sorted (Cons x (Cons y ys)) = and (leq x y) (sorted (Cons y ys))

last :: List Nat -> Nat
last Nil = Z
last (Cons x Nil) = x
last (Cons x (Cons y ys)) = last (Cons y ys)

lastOfTwo :: List Nat -> List Nat -> Nat
lastOfTwo xs Nil = last xs
lastOfTwo xs (Cons y ys) = last (Cons y ys)

butlastConcat :: List a -> List a -> List a
butlastConcat xs Nil = butlast xs
butlastConcat xs (Cons y ys) = app xs (butlast (Cons y ys))

-- Trees --------------------------------------------------------------------------
mirror :: Tree a -> Tree a
mirror Leaf = Leaf
mirror (Node l x r) = Node (mirror r) x (mirror l)

height :: Tree a -> Nat
height Leaf = Z
height (Node l x r) = S (max2 (height l) (height r))
"""
