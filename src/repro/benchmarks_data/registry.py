"""Registry of benchmark problems and the paper's reported reference numbers.

Everything the evaluation section of the paper reports is collected here so
that the benchmark harness and EXPERIMENTS.md can juxtapose "paper" and
"measured" values from one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..program import Goal, Program
from .false_conjectures import (
    FALSE_CONJECTURES_SOURCE,
    false_conjectures_goals,
    false_conjectures_program,
)
from .isaplanner import (
    HINTED_PROPERTIES,
    ISAPLANNER_PROPERTIES_SOURCE,
    isaplanner_goals,
    isaplanner_program,
)
from .mutual import MUTUAL_SOURCE, mutual_goals, mutual_program
from .prelude import PRELUDE_SOURCE

__all__ = [
    "BenchmarkProblem",
    "isaplanner_problems",
    "mutual_problems",
    "false_conjectures_problems",
    "all_problems",
    "PAPER_REPORTED",
    "SUITE_PROGRAM_SOURCES",
]

#: Raw surface source of each suite's program — exactly the text the
#: ``*_program()`` builders elaborate.  Lets certificate checking re-elaborate
#: a suite independently without first building the program a second time
#: just to read its ``source`` attribute.
SUITE_PROGRAM_SOURCES = {
    "isaplanner": PRELUDE_SOURCE + ISAPLANNER_PROPERTIES_SOURCE,
    "mutual": MUTUAL_SOURCE,
    "false_conjectures": PRELUDE_SOURCE + FALSE_CONJECTURES_SOURCE,
}


@dataclass(frozen=True)
class BenchmarkProblem:
    """One benchmark problem: a named goal together with its program."""

    name: str
    suite: str
    goal: Goal
    program: Program

    @property
    def is_conditional(self) -> bool:
        """Is the goal conditional (and therefore out of scope)?"""
        return self.goal.is_conditional

    @property
    def hint(self) -> Optional[str]:
        """The lemma hint the paper says unlocks this problem, if any."""
        return HINTED_PROPERTIES.get(self.name)

    def __str__(self) -> str:
        return f"{self.suite}/{self.name}"


def isaplanner_problems() -> List[BenchmarkProblem]:
    """The 85 IsaPlanner problems."""
    program = isaplanner_program()
    return [
        BenchmarkProblem(name=goal.name, suite="isaplanner", goal=goal, program=program)
        for goal in isaplanner_goals()
    ]


def mutual_problems() -> List[BenchmarkProblem]:
    """The mutual-induction problems."""
    program = mutual_program()
    return [
        BenchmarkProblem(name=goal.name, suite="mutual", goal=goal, program=program)
        for goal in mutual_goals()
    ]


def false_conjectures_problems() -> List[BenchmarkProblem]:
    """The plausible-but-false refutation suite (every goal is disprovable)."""
    program = false_conjectures_program()
    return [
        BenchmarkProblem(name=goal.name, suite="false_conjectures", goal=goal, program=program)
        for goal in false_conjectures_goals()
    ]


def all_problems() -> List[BenchmarkProblem]:
    """Every problem of every *theorem* suite.

    The refutation suite is deliberately excluded: its goals are false by
    construction, so mixing them into "all" would turn every all-suite solve
    rate into noise.  Run it explicitly (``--suite false_conjectures`` or
    ``python -m repro disprove``).
    """
    return isaplanner_problems() + mutual_problems()


#: Numbers reported in the paper's evaluation (Section 6), used by the harness
#: to print paper-vs-measured comparisons.
PAPER_REPORTED: Dict[str, object] = {
    # Fig. 7 / Section 6.1
    "isaplanner_total": 85,
    "isaplanner_solved": 44,
    "isaplanner_solved_under_100ms": 40,
    "isaplanner_average_ms": 129.0,
    "isaplanner_conditional_out_of_scope": 13,
    "butlast_take_ms": 40.0,
    "mutual_average_ms": 5.3,
    # Section 6.2 — solved counts of other tools, as reported by [14, 53]
    "tool_comparison": {
        "Zeno": 82,
        "HipSpec": 80,
        "CVC4": 80,
        "ACL2": 74,
        "Inductive Horn Clause Solving": 68,
        "IsaPlanner": 47,
        "Dafny": 45,
        "CycleQ (paper)": 44,
    },
    # Section 6.2 — problems unlocked by a commutativity hint
    "hinted_properties": dict(HINTED_PROPERTIES),
    # Section 1.1 — HipSpec's time on the butLast/take property
    "hipspec_butlast_seconds": 40.0,
}
